"""Namespace traversal: ``na`` items with member lists and aliases."""

from __future__ import annotations


def emit_namespaces(an) -> None:
    for ns in an.tree.all_namespaces:
        item = an.namespace_item(ns)
        item.add("nloc", *an.location_words(ns.location))
        parent = ns.parent
        if parent is not None and not parent.is_global:
            item.add("nnspace", an.namespace_item(parent).ref)
        for sub in ns.namespaces:
            item.add("nmem", an.namespace_item(sub).ref)
        for c in ns.classes:
            if an.visible(c):
                item.add("nmem", an.class_item(c).ref)
        for r in ns.routines:
            if an.visible(r):
                item.add("nmem", an.routine_item(r).ref)
        for te in ns.templates:
            item.add("nmem", an.template_item(te).ref)
        for e in ns.enums:
            item.add("nmem", an.type_item(an.tree.types.enum_type(e)).ref)
        for td in ns.typedefs:
            item.add("nmem", an.type_item(an.tree.types.typedef_type(td)).ref)
        for alias_name, target in ns.aliases.items():
            item.add("nalias", an.namespace_item(target).ref, alias_name)
        item.add("npos", *an.pos_words(ns.position))
