"""Source-file traversal: ``so`` items with inclusion edges (``sinc``)."""

from __future__ import annotations


def emit_files(an) -> None:
    for f in an.tree.files:
        if f.name.startswith("<"):
            continue  # synthetic pseudo-files
        item = an.file_item(f)
        for inc in f.includes:
            item.add("sinc", an.file_item(inc).ref)
        if f.system:
            item.add("ssys", "yes")
