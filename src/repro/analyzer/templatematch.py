"""Template ↔ instantiation matching by source location.

Paper Section 3.1: "The IL subtrees indicate that an entity has been
instantiated, not the template from which it is derived.  To compensate
for this, the IL Analyzer creates a list of templates in advance, and
then scans it to determine the template corresponding to an
instantiation's locations.  Because the location of a specialization is
not within the associated template's definition, it is currently not
possible to determine the originating template for a specialization."

We reproduce exactly that: a :class:`TemplateIndex` built once from the
IL's template list, queried with each instantiated entity's location.
The innermost template whose definition span contains the location wins;
an entity whose location falls in no span (an explicit specialization)
gets no provenance attribute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cpp.il import Template
from repro.cpp.source import SourceFile, SourceLocation


@dataclass
class _Span:
    """The full definition extent of one template in one file."""

    template: Template
    file: SourceFile
    begin: tuple[int, int]
    end: tuple[int, int]

    def contains(self, loc: SourceLocation) -> bool:
        if loc.file is not self.file:
            return False
        point = (loc.line, loc.column)
        return self.begin <= point <= self.end

    def size(self) -> tuple[int, int]:
        return (self.end[0] - self.begin[0], self.end[1] - self.begin[1])


class TemplateIndex:
    """The analyzer's scan list of template definition spans."""

    def __init__(self, templates: list[Template]):
        self.spans: list[_Span] = []
        for te in templates:
            span = _template_span(te)
            if span is not None:
                self.spans.append(span)

    def match(self, loc: Optional[SourceLocation]) -> Optional[Template]:
        """The innermost template whose definition contains ``loc``."""
        if loc is None:
            return None
        best: Optional[_Span] = None
        for span in self.spans:
            if not span.contains(loc):
                continue
            if best is None or span.size() < best.size():
                best = span
        return best.template if best is not None else None


def _template_span(te: Template) -> Optional[_Span]:
    """Compute a template's definition extent: from the earliest known
    position (header begin, else name) to the latest (body end)."""
    begin: Optional[SourceLocation] = None
    end: Optional[SourceLocation] = None
    if te.position.header is not None:
        begin = te.position.header.begin
        end = te.position.header.end
    if te.position.body is not None:
        if begin is None:
            begin = te.position.body.begin
        end = te.position.body.end
    if begin is None:
        begin = end = te.location
    if end is None:
        end = begin
    if begin.file is not end.file:
        # out-of-line spans never straddle files in the supported subset;
        # fall back to the body extent
        begin = end
    return _Span(te, begin.file, (begin.line, begin.column), (end.line, end.column))
