"""IL Analyzer driver: IL tree -> PDB document.

Id assignment is demand-driven but deterministic: each pass walks the
IL's creation-order registries, so the same IL always produces the same
PDB.  Items are emitted grouped by kind in the order source files,
templates, namespaces, classes, routines, types, macros — mirroring the
"separate traversals" design the paper describes.
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.analyzer.passes import (
    emit_classes,
    emit_files,
    emit_macros,
    emit_namespaces,
    emit_routines,
    emit_types,
)
from repro.analyzer.passes.templates_pass import emit_templates
from repro.analyzer.templatematch import TemplateIndex
from repro.cpp.cpptypes import Type
from repro.cpp.il import Class, ILTree, Namespace, Routine, Template
from repro.cpp.source import SourceFile, SourceLocation
from repro.pdbfmt.items import PdbDocument, RawItem

#: pass order — one traversal per construct kind (paper Section 3.1)
DEFAULT_PASSES = ("so", "te", "na", "cl", "ro", "ty", "ma")

#: pseudo-files the front end synthesises; never reported
_SYNTHETIC_FILES = ("<builtin>", "<predefined>", "<default-arg>", "<paste>")


class ILAnalyzer:
    """Produces a PDB document from an ILTree."""

    def __init__(self, tree: ILTree, passes: tuple[str, ...] = DEFAULT_PASSES):
        self.tree = tree
        self.passes = passes
        self.doc = PdbDocument()
        self.template_index = TemplateIndex(tree.all_templates)
        self._counters: dict[str, int] = {}
        self._file_ids: dict[int, RawItem] = {}
        self._class_ids: dict[int, RawItem] = {}
        self._routine_ids: dict[int, RawItem] = {}
        self._template_ids: dict[int, RawItem] = {}
        self._namespace_ids: dict[int, RawItem] = {}
        self._type_ids: dict[Type, RawItem] = {}
        #: items created on demand, grouped by prefix, in creation order
        self._created: dict[str, list[RawItem]] = {p: [] for p in DEFAULT_PASSES}

    # -- id allocation ---------------------------------------------------

    def _new_item(self, prefix: str, name: str) -> RawItem:
        n = self._counters.get(prefix, 0) + 1
        self._counters[prefix] = n
        item = RawItem(prefix=prefix, id=n, name=name)
        self._created[prefix].append(item)
        return item

    # -- reference helpers (memoised, demand-driven) --------------------------

    def file_item(self, f: SourceFile) -> RawItem:
        item = self._file_ids.get(id(f))
        if item is None:
            item = self._new_item("so", f.name)
            self._file_ids[id(f)] = item
        return item

    def class_item(self, c: Class) -> RawItem:
        item = self._class_ids.get(id(c))
        if item is None:
            item = self._new_item("cl", c.name)
            self._class_ids[id(c)] = item
        return item

    def routine_item(self, r: Routine) -> RawItem:
        item = self._routine_ids.get(id(r))
        if item is None:
            item = self._new_item("ro", r.name)
            self._routine_ids[id(r)] = item
        return item

    def template_item(self, t: Template) -> RawItem:
        item = self._template_ids.get(id(t))
        if item is None:
            item = self._new_item("te", t.name)
            self._template_ids[id(t)] = item
        return item

    def namespace_item(self, n: Namespace) -> RawItem:
        item = self._namespace_ids.get(id(n))
        if item is None:
            item = self._new_item("na", n.name)
            self._namespace_ids[id(n)] = item
        return item

    def type_item(self, t: Type) -> RawItem:
        """The ty item for ``t`` (class types route to ``cl`` items —
        use :meth:`type_ref` for reference strings)."""
        from repro.analyzer.passes.types_pass import populate_type_item

        item = self._type_ids.get(t)
        if item is None:
            item = self._new_item("ty", t.spelling())
            self._type_ids[t] = item
            populate_type_item(self, item, t)
        return item

    def type_ref(self, t: Optional[Type]) -> str:
        """Render a type reference: ``cl#N`` for class types, ``ty#N``
        otherwise, ``NULL`` for missing."""
        from repro.cpp.cpptypes import ClassType

        if t is None:
            return "NULL"
        if isinstance(t, ClassType):
            return str(self.class_item(t.decl).ref)
        return str(self.type_item(t).ref)

    # -- location helpers ---------------------------------------------------------

    def location_words(self, loc: Optional[SourceLocation]) -> list[str]:
        if loc is None or loc.file.name in _SYNTHETIC_FILES:
            return ["NULL", "0", "0"]
        return [str(self.file_item(loc.file).ref), str(loc.line), str(loc.column)]

    def pos_words(self, position) -> list[str]:
        """Four locations: header begin/end, body begin/end."""
        out: list[str] = []
        for rng in (position.header, position.body):
            if rng is None:
                out += ["NULL", "0", "0", "NULL", "0", "0"]
            else:
                out += self.location_words(rng.begin) + self.location_words(rng.end)
        return out

    # -- visibility -----------------------------------------------------------------

    @staticmethod
    def visible(entity) -> bool:
        """PRELINK-mode instantiations are flagged IL-invisible."""
        return bool(getattr(entity, "flags", {}).get("il_visible", True))

    # -- parent scope helpers ----------------------------------------------------------

    def parent_attrs(self, item: RawItem, entity, class_key: str, ns_key: str) -> None:
        parent = entity.parent
        if isinstance(parent, Class):
            item.add(class_key, self.class_item(parent).ref)
        elif isinstance(parent, Namespace) and not parent.is_global:
            item.add(ns_key, self.namespace_item(parent).ref)

    # -- driver --------------------------------------------------------------------------

    def run(self) -> PdbDocument:
        dispatch = {
            "so": emit_files,
            "te": emit_templates,
            "na": emit_namespaces,
            "cl": emit_classes,
            "ro": emit_routines,
            "ty": emit_types,
            "ma": emit_macros,
        }
        for p in self.passes:
            with obs.observe(f"analyze.{p}", cat="analyzer"):
                dispatch[p](self)
        # Assemble the document in pass order; demand-created items (types
        # referenced from signatures, files referenced from locations)
        # appear with their kind group, ordered by id.
        with obs.observe("analyze.assemble", cat="analyzer"):
            for prefix in DEFAULT_PASSES:
                for item in sorted(self._created[prefix], key=lambda i: i.id):
                    self.doc.add(item)
        return self.doc


def analyze(tree: ILTree, passes: tuple[str, ...] = DEFAULT_PASSES) -> PdbDocument:
    """Run the IL Analyzer over ``tree``, returning the PDB document."""
    return ILAnalyzer(tree, passes).run()
