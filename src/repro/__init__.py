"""PDT-repro: the Program Database Toolkit (SC 2000), reproduced in Python.

A tool framework for static and dynamic analysis of object-oriented
software with templates.  The pipeline (paper Figure 2)::

    C++ source --[Frontend]--> IL tree --[ILAnalyzer]--> PDB --[DUCTAPE]--> tools
                                                                  |
                                               TAU instrumentation / SILOON bindings

Quickstart::

    from repro import Frontend, FrontendOptions, PDB, analyze

    fe = Frontend(FrontendOptions(include_paths=["include"]))
    fe.register_files({"hello.cpp": "int main() { return 0; }"})
    tree = fe.compile("hello.cpp")
    pdb = PDB(analyze(tree))
    print(pdb.to_text())

Subpackages: :mod:`repro.cpp` (front end), :mod:`repro.analyzer` (IL
Analyzer), :mod:`repro.pdbfmt` (PDB format), :mod:`repro.ductape` (API
library), :mod:`repro.tools` (pdbconv/pdbhtml/pdbmerge/pdbtree),
:mod:`repro.tau` (profiling), :mod:`repro.siloon` (script bindings),
:mod:`repro.baselines`, :mod:`repro.workloads`.
"""

from repro.analyzer import ILAnalyzer, analyze
from repro.cpp import Frontend, FrontendOptions, InstantiationMode
from repro.ductape import PDB
from repro.pdbfmt import PdbDocument, parse_pdb, write_pdb

__version__ = "1.3.0"

__all__ = [
    "Frontend",
    "FrontendOptions",
    "ILAnalyzer",
    "InstantiationMode",
    "PDB",
    "PdbDocument",
    "analyze",
    "parse_pdb",
    "write_pdb",
    "__version__",
]
