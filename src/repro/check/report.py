"""Reporters: human text, JSON (``pdbcheck-findings/1``), SARIF 2.1.0.

All three render the same :class:`~repro.check.core.CheckReport`; the
SARIF output follows the OASIS 2.1.0 schema (one run, the rules as
``reportingDescriptor`` objects, one ``result`` per finding) so GitHub
code-scanning and other CI annotators can ingest it directly.
"""

from __future__ import annotations

import json

from repro.check.core import SEVERITIES, CheckReport, Finding, all_rules

#: schema tag of the JSON report
JSON_SCHEMA = "pdbcheck-findings/1"
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "pdbcheck"
TOOL_URI = "https://github.com/paper-repro/pdt-repro"


def _tool_version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        return "0.0.0"


# ------------------------------------------------------------------ text


def render_text(report: CheckReport, verbose: bool = False) -> str:
    """Compiler-style one-line-per-finding text, plus a summary line."""
    lines = [f.render() for f in report.findings]
    counts = ", ".join(
        f"{report.count(sev)} {sev}{'s' if report.count(sev) != 1 else ''}"
        for sev in SEVERITIES
        if report.count(sev)
    )
    total = len(report.findings)
    summary = f"{total} finding{'s' if total != 1 else ''}"
    if counts:
        summary += f" ({counts})"
    if report.suppressed:
        summary += f", {report.suppressed} suppressed"
    summary += f" — checks run: {', '.join(report.checks_run)}"
    lines.append(summary)
    if verbose:
        for name in report.checks_run:
            lines.append(f"  {name}: {report.timings[name] * 1e3:.2f} ms")
    return "\n".join(lines)


# ------------------------------------------------------------------ JSON


def _finding_dict(f: Finding) -> dict:
    d = {
        "rule": f.rule.id,
        "name": f.rule.name,
        "severity": f.rule.severity,
        "item": f.item,
        "message": f.message,
        "file": f.file,
        "line": f.line,
        "column": f.column,
    }
    if f.related:
        d["related"] = [
            {"message": msg, "file": file, "line": line} for msg, file, line in f.related
        ]
    return d


def to_json_dict(report: CheckReport) -> dict:
    """The ``pdbcheck-findings/1`` report object."""
    return {
        "schema": JSON_SCHEMA,
        "tool": {"name": TOOL_NAME, "version": _tool_version()},
        "summary": {
            "findings": len(report.findings),
            "errors": report.count("error"),
            "warnings": report.count("warning"),
            "notes": report.count("note"),
            "suppressed": report.suppressed,
            "rules": report.rule_counts,
        },
        "checks": {
            name: {"wall_s": report.timings[name]} for name in report.checks_run
        },
        "findings": [_finding_dict(f) for f in report.findings],
    }


def render_json(report: CheckReport) -> str:
    return json.dumps(to_json_dict(report), indent=2, sort_keys=False)


# ----------------------------------------------------------------- SARIF


def to_sarif_dict(report: CheckReport) -> dict:
    """A SARIF 2.1.0 log: one run, every registered rule described."""
    rules = all_rules()
    rule_index = {r.id: i for i, r in enumerate(rules)}
    results = []
    for f in report.findings:
        result: dict = {
            "ruleId": f.rule.id,
            "ruleIndex": rule_index[f.rule.id],
            "level": f.rule.severity,
            "message": {"text": f.message},
        }
        if f.file:
            result["locations"] = [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.file.lstrip("/")},
                        "region": {
                            "startLine": max(1, f.line),
                            "startColumn": max(1, f.column),
                        },
                    }
                }
            ]
        if f.related:
            result["relatedLocations"] = [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": file.lstrip("/")},
                        "region": {"startLine": max(1, line)},
                    },
                    "message": {"text": msg},
                }
                for msg, file, line in f.related
            ]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "version": _tool_version(),
                        "rules": [
                            {
                                "id": r.id,
                                "name": r.name,
                                "shortDescription": {"text": r.summary},
                                "defaultConfiguration": {"level": r.severity},
                            }
                            for r in rules
                        ],
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def render_sarif(report: CheckReport) -> str:
    return json.dumps(to_sarif_dict(report), indent=2, sort_keys=False)


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
