"""repro.check — whole-program static-analysis passes over the PDB.

The paper frames PDT as "a framework for building static analysis
tools" on top of the PDB/DUCTAPE interface; this package is that next
consumer: a pluggable pass framework (:mod:`repro.check.core`) with
five built-in checkers —

========  =======================  ==========================================
check     rules                    finds
========  =======================  ==========================================
deadcode  PDT001                   unreachable mutually-recursive clusters
bloat     PDT011, PDT012           unused template instantiations
odr       PDT021, PDT022           cross-TU One-Definition-Rule conflicts
hierarchy PDT031, PDT032           missing virtual dtors, hidden virtuals
includes  PDT041, PDT042           contribution-free includes, include cycles
========  =======================  ==========================================

— plus three reporters (text / JSON ``pdbcheck-findings/1`` / SARIF
2.1.0, :mod:`repro.check.report`) and select-file-style suppressions
(:mod:`repro.check.suppress`).  The CLI lives in
:mod:`repro.tools.pdbcheck`; ``pdbbuild --check`` runs the same passes
on its merged output.
"""

from repro.check.core import (
    Check,
    CheckContext,
    CheckReport,
    Finding,
    Rule,
    all_checks,
    all_rules,
    register,
    resolve_selection,
    run_checks,
)
from repro.check.report import render_json, render_sarif, render_text, to_json_dict, to_sarif_dict
from repro.check.suppress import Suppressions

__all__ = [
    "Check",
    "CheckContext",
    "CheckReport",
    "Finding",
    "Rule",
    "Suppressions",
    "all_checks",
    "all_rules",
    "register",
    "resolve_selection",
    "run_checks",
    "render_text",
    "render_json",
    "render_sarif",
    "to_json_dict",
    "to_sarif_dict",
]
