"""Dead-routine detection (PDT001).

:class:`~repro.ductape.callgraph.CallTree` finds its roots as "routines
nobody calls" — so a mutually-recursive cluster with no external caller
has *no* roots at all and the whole cluster silently disappears from
every ``pdbtree`` rendering.  This check runs reachability over the
Tarjan SCC condensation instead: entry points are ``main``, any
user-supplied ``--entry`` names, and every acyclic routine nobody calls
(the conservative equivalent of the tree roots — an uncalled plain
routine may be an exported API).  What remains unreachable is exactly
the set of cyclic orphan clusters and code only they can reach.
"""

from __future__ import annotations

from repro.check.core import Check, CheckContext, Finding, Rule, register
from repro.check.graph import Condensation

DEAD_ROUTINE = Rule(
    id="PDT001",
    name="dead-routine",
    severity="warning",
    summary="Routine is unreachable from every entry point "
    "(member of, or only called from, a mutually-recursive cluster with no external entry)",
)


@register
class DeadCodeCheck(Check):
    name = "deadcode"
    rules = (DEAD_ROUTINE,)

    def run(self, ctx: CheckContext) -> list[Finding]:
        routines = ctx.routines
        by_ref = {r.ref: r for r in routines}
        callees = ctx.callees_map()
        succ_map = {
            r.ref: [callee.ref for callee in callees[r.ref]] for r in routines
        }
        cond = Condensation([r.ref for r in routines], lambda ref: succ_map[ref])

        entry_names = {"main", *ctx.entries}
        entry_comps = set()
        for ci in range(len(cond.sccs)):
            # acyclic, uncalled routines are the CallTree.roots analogue
            if cond.comp_preds[ci] == 0 and not cond.is_cycle(ci):
                entry_comps.add(ci)
        for r in routines:
            if r.name() in entry_names or r.fullName() in entry_names:
                entry_comps.add(cond.comp_of[r.ref])
        live = cond.reachable_from(entry_comps)

        findings: list[Finding] = []
        for ci, comp in enumerate(cond.sccs):
            if ci in live:
                continue
            cluster = [by_ref[ref] for ref in comp]
            names = ", ".join(sorted(r.fullName() for r in cluster))
            for r in cluster:
                if cond.is_cycle(ci):
                    msg = (
                        f"routine '{r.fullName()}' is never reached: it belongs to a "
                        f"mutually-recursive cluster {{{names}}} with no external entry"
                    )
                else:
                    msg = (
                        f"routine '{r.fullName()}' is only reachable from dead code"
                    )
                loc = r.location()
                findings.append(
                    Finding(
                        rule=DEAD_ROUTINE,
                        item=r.fullName(),
                        message=msg,
                        file=loc.file().name() if loc.known else None,
                        line=loc.line(),
                        column=loc.col(),
                    )
                )
        return findings
