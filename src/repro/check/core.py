"""The pass framework: rules, findings, checks, registry, runner.

A *check* is a whole-program pass over one (possibly merged) PDB through
the DUCTAPE API.  Each check owns one or more *rules* with stable IDs
(``PDT0xx``) and severities; running a check yields *findings*.  The
:class:`CheckContext` precomputes the shared derived structures every
pass needs — the reverse caller map, the derived-class map, per-file
item counts, externally-referenced classes — once, in O(items), so no
checker ever falls back to the O(routines × calls)
:meth:`PDB.callers_of` scan.  That is what keeps the whole suite inside
the E18 budget (< 2× a ``pdbtree`` walk of the same corpus).

Determinism: checks run in registration order, findings are sorted by
(file, line, column, rule, item), and every container iterates in PDB
item order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro import obs
from repro.ductape.items import PdbClass, PdbRoutine, PdbSimpleItem
from repro.ductape.pdb import PDB
from repro.pdbfmt.items import ItemRef

#: severity levels, most severe first (SARIF ``level`` values)
SEVERITIES = ("error", "warning", "note")


@dataclass(frozen=True)
class Rule:
    """One diagnostic rule with a stable ID."""

    id: str  # "PDT001"
    name: str  # "dead-routine" (SARIF reportingDescriptor name)
    severity: str  # "error" | "warning" | "note"
    summary: str  # one-line description

    def __post_init__(self):
        assert self.severity in SEVERITIES, self.severity


@dataclass
class Finding:
    """One diagnostic: a rule fired on an item at a location."""

    rule: Rule
    item: str  # fullName of the offending entity
    message: str
    file: Optional[str] = None
    line: int = 0
    column: int = 0
    #: related locations: (message, file, line) — e.g. the other ODR def
    related: list[tuple[str, str, int]] = field(default_factory=list)

    def sort_key(self) -> tuple:
        return (self.file or "", self.line, self.column, self.rule.id, self.item, self.message)

    def render(self) -> str:
        loc = f"{self.file}:{self.line}:{self.column}: " if self.file else ""
        return f"{loc}{self.rule.severity}: {self.message} [{self.rule.id}]"


class Check:
    """Base class for whole-program passes.  Subclasses set ``name`` and
    ``rules`` and implement :meth:`run`."""

    name: str = ""
    rules: tuple[Rule, ...] = ()

    def run(self, ctx: "CheckContext") -> list[Finding]:  # pragma: no cover
        raise NotImplementedError

    def rule(self, rule_id: str) -> Rule:
        for r in self.rules:
            if r.id == rule_id:
                return r
        raise KeyError(rule_id)


# ------------------------------------------------------------- registry

#: registered check classes, in registration (= run) order
_REGISTRY: list[type[Check]] = []


def register(cls: type[Check]) -> type[Check]:
    """Class decorator adding a check to the global registry."""
    assert cls.name and cls.rules, cls
    _REGISTRY.append(cls)
    return cls


def all_checks() -> list[Check]:
    """Fresh instances of every registered check, in run order."""
    _load_builtin_checks()
    return [cls() for cls in _REGISTRY]


def all_rules() -> list[Rule]:
    """Every rule of every registered check, in run order."""
    return [r for c in all_checks() for r in c.rules]


def _load_builtin_checks() -> None:
    # the builtin check modules register on import; import here (not at
    # module top) so core has no import cycle with them
    from repro.check import bloat, deadcode, hierarchy, includes, odr  # noqa: F401


def resolve_selection(spec: Optional[Iterable[str] | str]) -> dict[str, set[str]]:
    """Resolve a rule/check selection to ``{check name: enabled rule ids}``.

    ``spec`` is None/"all" (everything), or an iterable / comma-joined
    string of tokens, each a check name (``deadcode``), a rule id
    (``PDT001``), or a rule name (``dead-routine``).  Unknown tokens
    raise ``ValueError``.  A check with no enabled rules is not run.
    """
    checks = all_checks()
    if spec is None or spec == "all":
        return {c.name: {r.id for r in c.rules} for c in checks}
    if isinstance(spec, str):
        tokens = [t for t in (p.strip() for p in spec.split(",")) if t]
    else:
        tokens = list(spec)
    if tokens == ["all"]:
        return {c.name: {r.id for r in c.rules} for c in checks}
    enabled: dict[str, set[str]] = {}
    for tok in tokens:
        hit = False
        for c in checks:
            if tok == c.name:
                enabled.setdefault(c.name, set()).update(r.id for r in c.rules)
                hit = True
                continue
            for r in c.rules:
                if tok in (r.id, r.name):
                    enabled.setdefault(c.name, set()).add(r.id)
                    hit = True
        if not hit:
            known = sorted({c.name for c in checks} | {r.id for r in all_rules()})
            raise ValueError(f"unknown check or rule {tok!r} (known: {', '.join(known)})")
    return enabled


# -------------------------------------------------------------- context


class CheckContext:
    """Shared, precomputed derived structures over one PDB.

    Everything is built lazily on first use and exactly once, so a
    selection that only runs the include lints never pays for the call
    graph.
    """

    def __init__(self, pdb: PDB, entries: Iterable[str] = ()):
        self.pdb = pdb
        #: extra entry-point names for reachability (``main`` is implicit)
        self.entries = list(entries)
        self._callees: Optional[dict[ItemRef, list[PdbRoutine]]] = None
        self._callers: Optional[dict[ItemRef, list[PdbRoutine]]] = None
        self._derived: Optional[dict[ItemRef, list[PdbClass]]] = None
        self._class_refs: Optional[dict[ItemRef, set[ItemRef]]] = None
        self._file_items: Optional[dict[ItemRef, int]] = None
        self._type_classes: dict[ItemRef, list[PdbClass]] = {}

    # each map is one O(items) sweep, replacing per-item O(n) scans

    @property
    def routines(self) -> list[PdbRoutine]:
        return self.pdb.getRoutineVec()

    @property
    def classes(self) -> list[PdbClass]:
        return self.pdb.getClassVec()

    def callees_map(self) -> dict[ItemRef, list[PdbRoutine]]:
        """routine ref -> resolved callees: the ``rcall`` records are
        resolved exactly once, shared by the call-graph condensation
        (deadcode) and the reverse map below (bloat)."""
        if self._callees is None:
            m: dict[ItemRef, list[PdbRoutine]] = {}
            for r in self.routines:
                m[r.ref] = [
                    callee
                    for callee in (call.call() for call in r.callees())
                    if callee is not None
                ]
            self._callees = m
        return self._callees

    def callers_map(self) -> dict[ItemRef, list[PdbRoutine]]:
        """callee ref -> callers, one pass over all ``rcall`` records."""
        if self._callers is None:
            m: dict[ItemRef, list[PdbRoutine]] = {}
            callees = self.callees_map()
            for r in self.routines:
                for callee in callees[r.ref]:
                    m.setdefault(callee.ref, []).append(r)
            self._callers = m
        return self._callers

    def derived_map(self) -> dict[ItemRef, list[PdbClass]]:
        """base-class ref -> directly derived classes."""
        if self._derived is None:
            m: dict[ItemRef, list[PdbClass]] = {}
            for c in self.classes:
                for _acs, _virt, base in c.baseClasses():
                    m.setdefault(base.ref, []).append(c)
            self._derived = m
        return self._derived

    def class_refs_map(self) -> dict[ItemRef, set[ItemRef]]:
        """class ref -> refs of the *owners* that mention it.

        An owner is the class a reference originates from (for member
        functions: their parent class; for free routines: the routine
        itself; for classes: the class).  A class mentioned only by its
        own members (e.g. a constructor's signature returns the class)
        is *not* externally referenced — the bloat check's key subtlety.
        """
        if self._class_refs is None:
            m: dict[ItemRef, set[ItemRef]] = {}

            def note(cls_ref: ItemRef, owner: ItemRef) -> None:
                m.setdefault(cls_ref, set()).add(owner)

            for c in self.classes:
                for _acs, _virt, base in c.baseClasses():
                    note(base.ref, c.ref)
                for mem in c.dataMembers():
                    t = mem.type()
                    for cls in self._classes_of_type(t):
                        note(cls.ref, c.ref)
            for r in self.routines:
                parent = r.parentClass()
                owner = parent.ref if parent is not None else r.ref
                for cls in self._classes_of_type(r.signature()):
                    note(cls.ref, owner)
            self._class_refs = m
        return self._class_refs

    def _classes_of_type(self, t: Optional[PdbSimpleItem]) -> list[PdbClass]:
        """All classes reachable through a type item (ptr/ref/func...).

        Memoized per entry type: signatures and member types share type
        subtrees heavily (``int``, ``T &``, ...), so the closure walk
        runs once per distinct type item, not once per mention.
        """
        if t is None:
            return []
        cached = self._type_classes.get(t.ref)
        if cached is not None:
            return cached
        out: list[PdbClass] = []
        seen: set[ItemRef] = set()
        stack: list[PdbSimpleItem] = [t]
        while stack:
            cur = stack.pop()
            if cur.ref in seen:
                continue
            seen.add(cur.ref)
            if isinstance(cur, PdbClass):
                out.append(cur)
                continue
            if cur.prefix() != "ty":
                continue
            nxt = [cur.referencedType(), cur.returnType()]  # type: ignore[attr-defined]
            nxt.extend(cur.argumentTypes())  # type: ignore[attr-defined]
            stack.extend(x for x in nxt if x is not None)
        self._type_classes[t.ref] = out
        return out

    def file_items_map(self) -> dict[ItemRef, int]:
        """file ref -> number of PDB items whose location is in it."""
        if self._file_items is None:
            m: dict[ItemRef, int] = {}
            for item in self.pdb.items():
                loc_fn = getattr(item, "location", None)
                if loc_fn is None:
                    continue
                loc = loc_fn()
                if loc.known:
                    m[loc.file().ref] = m.get(loc.file().ref, 0) + 1
            self._file_items = m
        return self._file_items


# ---------------------------------------------------------------- runner


@dataclass
class CheckReport:
    """Outcome of one :func:`run_checks` invocation."""

    findings: list[Finding] = field(default_factory=list)
    #: check name -> wall seconds
    timings: dict[str, float] = field(default_factory=dict)
    #: rule id -> finding count (post-suppression)
    rule_counts: dict[str, int] = field(default_factory=dict)
    checks_run: list[str] = field(default_factory=list)
    suppressed: int = 0

    def count(self, severity: str) -> int:
        return sum(1 for f in self.findings if f.rule.severity == severity)

    def worst_severity(self) -> Optional[str]:
        for sev in SEVERITIES:
            if any(f.rule.severity == sev for f in self.findings):
                return sev
        return None

    def fails(self, fail_on: str = "warning") -> bool:
        """Whether findings reach the ``fail_on`` severity threshold."""
        threshold = SEVERITIES.index(fail_on)
        worst = self.worst_severity()
        return worst is not None and SEVERITIES.index(worst) <= threshold


def run_checks(
    pdb: PDB,
    select: Optional[Iterable[str] | str] = None,
    entries: Iterable[str] = (),
    suppressions: Optional[Callable[[Finding], bool]] = None,
) -> CheckReport:
    """Run the selected checks over ``pdb``.

    ``select`` as in :func:`resolve_selection`; ``entries`` are extra
    entry-point routine names for reachability; ``suppressions`` is a
    predicate returning True when a finding is *kept* (see
    :mod:`repro.check.suppress`).  Each check runs inside an
    ``obs.observe("check.<name>", cat="check")`` span, so ``pdbbuild``'s
    trace and stats see per-check wall time for free.
    """
    enabled = resolve_selection(select)
    ctx = CheckContext(pdb, entries=entries)
    report = CheckReport()
    for check in all_checks():
        rule_ids = enabled.get(check.name)
        if not rule_ids:
            continue
        t0 = time.perf_counter()
        with obs.observe(f"check.{check.name}", cat="check"):
            found = check.run(ctx)
        report.timings[check.name] = time.perf_counter() - t0
        report.checks_run.append(check.name)
        for f in found:
            if f.rule.id not in rule_ids:
                continue
            if suppressions is not None and not suppressions(f):
                report.suppressed += 1
                continue
            report.findings.append(f)
    report.findings.sort(key=Finding.sort_key)
    for f in report.findings:
        report.rule_counts[f.rule.id] = report.rule_counts.get(f.rule.id, 0) + 1
    report.rule_counts = dict(sorted(report.rule_counts.items()))
    return report
