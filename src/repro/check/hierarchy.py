"""Class-hierarchy lints (PDT031, PDT032) over :class:`ClassHierarchy`.

* **PDT031** — a class with virtual member functions and derived
  classes but no virtual destructor: deleting a derived object through
  a base pointer is undefined behaviour.
* **PDT032** — a derived-class member function that *hides* a base
  class's virtual function: same name, but no signature matches any
  virtual overload of that name in any ancestor, so the virtual is
  shadowed rather than overridden.  (Exact-signature redeclarations are
  overrides and are never flagged; constructors/destructors are exempt.)
"""

from __future__ import annotations

from repro.check.core import Check, CheckContext, Finding, Rule, register
from repro.ductape.items import PdbClass, PdbRoutine

MISSING_VIRTUAL_DTOR = Rule(
    id="PDT031",
    name="missing-virtual-dtor",
    severity="warning",
    summary="Polymorphic base class has derived classes but no virtual destructor",
)
HIDDEN_VIRTUAL = Rule(
    id="PDT032",
    name="hidden-virtual",
    severity="warning",
    summary="Member function hides a base-class virtual function instead of overriding it",
)


@register
class HierarchyCheck(Check):
    name = "hierarchy"
    rules = (MISSING_VIRTUAL_DTOR, HIDDEN_VIRTUAL)

    def run(self, ctx: CheckContext) -> list[Finding]:
        derived = ctx.derived_map()
        findings: list[Finding] = []

        for c in ctx.classes:
            if not derived.get(c.ref):
                continue
            members = c.memberFunctions()
            if not any(m.isVirtual() for m in members):
                continue
            dtors = [m for m in members if m.kind() == PdbRoutine.RO_DTOR]
            if any(d.isVirtual() for d in dtors):
                continue
            what = f"non-virtual destructor '{dtors[0].fullName()}'" if dtors else (
                "an implicit non-virtual destructor"
            )
            loc = (dtors[0] if dtors else c).location()
            findings.append(
                Finding(
                    rule=MISSING_VIRTUAL_DTOR,
                    item=c.fullName(),
                    message=(
                        f"polymorphic class '{c.fullName()}' has "
                        f"{len(derived[c.ref])} derived class(es) but {what}"
                    ),
                    file=loc.file().name() if loc.known else None,
                    line=loc.line(),
                    column=loc.col(),
                )
            )

        for c in ctx.classes:
            bases = _ancestors(c)
            if not bases:
                continue
            # base virtuals by plain name -> set of signature names
            virtuals: dict[str, set[str]] = {}
            vowner: dict[str, PdbRoutine] = {}
            for b in bases:
                for m in b.memberFunctions():
                    if not m.isVirtual() or m.kind() in (
                        PdbRoutine.RO_CTOR,
                        PdbRoutine.RO_DTOR,
                    ):
                        continue
                    sig = m.signature()
                    virtuals.setdefault(m.name(), set()).add(
                        sig.name() if sig is not None else ""
                    )
                    vowner.setdefault(m.name(), m)
            if not virtuals:
                continue
            own: dict[str, set[str]] = {}
            own_items: dict[str, list[PdbRoutine]] = {}
            for m in c.memberFunctions():
                if m.parentClass() is not c or m.kind() in (
                    PdbRoutine.RO_CTOR,
                    PdbRoutine.RO_DTOR,
                ):
                    continue
                sig = m.signature()
                own.setdefault(m.name(), set()).add(sig.name() if sig is not None else "")
                own_items.setdefault(m.name(), []).append(m)
            for name, sigs in own.items():
                base_sigs = virtuals.get(name)
                if base_sigs is None:
                    continue
                if sigs & base_sigs:
                    continue  # at least one exact-signature override exists
                m = own_items[name][0]
                hidden = vowner[name]
                loc = m.location()
                findings.append(
                    Finding(
                        rule=HIDDEN_VIRTUAL,
                        item=m.fullName(),
                        message=(
                            f"'{m.fullName()}' hides virtual "
                            f"'{hidden.fullName()}' (no overload matches the "
                            f"base signature — the virtual is shadowed, not overridden)"
                        ),
                        file=loc.file().name() if loc.known else None,
                        line=loc.line(),
                        column=loc.col(),
                    )
                )
        return findings


def _ancestors(c: PdbClass) -> list[PdbClass]:
    """All transitive base classes, iteratively, cycle-safe."""
    out: list[PdbClass] = []
    seen = {c.ref}
    stack = [b for _a, _v, b in c.baseClasses()]
    while stack:
        b = stack.pop()
        if b.ref in seen:
            continue
        seen.add(b.ref)
        out.append(b)
        stack.extend(bb for _a, _v, bb in b.baseClasses())
    return out
