"""Cross-TU One-Definition-Rule violations (PDT021, PDT022).

Meaningful on *merged* PDBs: :meth:`PDB.merge` collapses items whose
(kind, name, parent, signature, defining location) coincide, so two
*different* definitions of the same entity survive the merge as two
items with the same full name — exactly the situation the ODR forbids.

Only *definition* items participate (a declaration in a header plus its
out-of-line definition in one TU is normal C++, not a violation), and
internal-linkage routines (``static``) are skipped — each TU is allowed
its own.
"""

from __future__ import annotations

from repro.check.core import Check, CheckContext, Finding, Rule, register

ODR_ROUTINE = Rule(
    id="PDT021",
    name="odr-routine",
    severity="error",
    summary="Routine has multiple conflicting definitions across translation units",
)
ODR_CLASS = Rule(
    id="PDT022",
    name="odr-class",
    severity="error",
    summary="Class has multiple conflicting definitions across translation units",
)


@register
class OdrCheck(Check):
    name = "odr"
    rules = (ODR_ROUTINE, ODR_CLASS)

    def run(self, ctx: CheckContext) -> list[Finding]:
        findings: list[Finding] = []

        # group by name first; signatures (overloads are legal) are only
        # resolved for the rare groups that actually collide
        by_name: dict = {}
        for r in ctx.routines:
            if not r.bodyBegin().known:
                continue  # declaration only — not a definition
            if r.isStatic() or r.storageClass() == "static":
                continue  # internal linkage: one per TU is legal
            by_name.setdefault(r.fullName(), []).append(r)
        for full_name, cands in by_name.items():
            if len(cands) < 2:
                continue
            groups: dict = {}
            for r in cands:
                sig = r.signature()
                groups.setdefault(sig.name() if sig is not None else "", []).append(r)
            for defs in groups.values():
                if len(defs) >= 2:
                    findings.extend(
                        self._conflict(ODR_ROUTINE, "routine", full_name, defs)
                    )

        cgroups: dict = {}
        for c in ctx.classes:
            if not c.location().known:
                continue
            cgroups.setdefault(c.fullName(), []).append(c)
        for full_name, defs in cgroups.items():
            if len(defs) < 2:
                continue
            findings.extend(self._conflict(ODR_CLASS, "class", full_name, defs))

        return findings

    @staticmethod
    def _conflict(rule: Rule, kind: str, full_name: str, defs: list) -> list[Finding]:
        sites = []
        for d in defs:
            loc = d.location()
            sites.append(
                (loc.file().name() if loc.known else "?", loc.line(), loc.col())
            )
        where = "; ".join(f"{f}:{ln}" for f, ln, _ in sites)
        out = []
        for d, (f, ln, col) in zip(defs, sites):
            out.append(
                Finding(
                    rule=rule,
                    item=full_name,
                    message=(
                        f"{kind} '{full_name}' has {len(defs)} conflicting "
                        f"definitions across translation units: {where}"
                    ),
                    file=None if f == "?" else f,
                    line=ln,
                    column=col,
                    related=[
                        ("other definition", of, oln)
                        for of, oln, _ in sites
                        if (of, oln) != (f, ln)
                    ],
                )
            )
        return out
