"""Graph algorithms for whole-program checks.

The call graph and the include graph both need strongly-connected
components: a mutually-recursive routine cluster with no external entry
has no :attr:`CallTree.roots` at all (every member is "called"), so
reachability must run over the SCC condensation, not the raw graph.

Everything here is iterative — the E12 scaling corpora produce chains
deep enough to blow Python's recursion limit — and deterministic: SCCs
come out keyed by first-seen node order, members in input order.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Sequence, TypeVar

T = TypeVar("T", bound=Hashable)


def tarjan_sccs(nodes: Sequence[T], succ: Callable[[T], Iterable[T]]) -> list[list[T]]:
    """Strongly-connected components of the graph (``nodes``, ``succ``).

    Iterative Tarjan.  Components are returned in reverse topological
    order (callees before callers), each component's members in visit
    order.  Successors outside ``nodes`` are ignored.
    """
    node_set = set(nodes)
    index: dict[T, int] = {}
    lowlink: dict[T, int] = {}
    on_stack: set[T] = set()
    stack: list[T] = []
    sccs: list[list[T]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        # work stack of (node, iterator over remaining successors)
        work: list[tuple[T, list[T], int]] = [(root, _succ_list(succ, root, node_set), 0)]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, children, i = work.pop()
            advanced = False
            while i < len(children):
                w = children[i]
                i += 1
                if w not in index:
                    work.append((v, children, i))
                    index[w] = lowlink[w] = counter
                    counter += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, _succ_list(succ, w, node_set), 0))
                    advanced = True
                    break
                if w in on_stack:
                    lowlink[v] = min(lowlink[v], index[w])
            if advanced:
                continue
            # v is finished
            if lowlink[v] == index[v]:
                comp: list[T] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == v:
                        break
                comp.reverse()
                sccs.append(comp)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
    return sccs


def _succ_list(succ: Callable[[T], Iterable[T]], v: T, node_set: set[T]) -> list[T]:
    return [w for w in succ(v) if w in node_set]


class Condensation:
    """The SCC condensation DAG of a graph, with reachability helpers."""

    def __init__(self, nodes: Sequence[T], succ: Callable[[T], Iterable[T]]):
        self.nodes = list(nodes)
        self.sccs = tarjan_sccs(self.nodes, succ)
        #: node -> index of its component in :attr:`sccs`
        self.comp_of: dict[T, int] = {}
        for ci, comp in enumerate(self.sccs):
            for v in comp:
                self.comp_of[v] = ci
        node_set = set(self.nodes)
        self.comp_succ: list[set[int]] = [set() for _ in self.sccs]
        self.self_loop: list[bool] = [False] * len(self.sccs)
        for v in self.nodes:
            ci = self.comp_of[v]
            for w in succ(v):
                if w not in node_set:
                    continue
                cj = self.comp_of[w]
                if ci == cj:
                    if len(self.sccs[ci]) == 1:
                        self.self_loop[ci] = True
                else:
                    self.comp_succ[ci].add(cj)
        self.comp_preds: list[int] = [0] * len(self.sccs)
        for ci, succs in enumerate(self.comp_succ):
            for cj in succs:
                self.comp_preds[cj] += 1

    def is_cycle(self, ci: int) -> bool:
        """Whether component ``ci`` contains a cycle (mutual recursion or
        a self-loop)."""
        return len(self.sccs[ci]) > 1 or self.self_loop[ci]

    def reachable_from(self, entry_comps: Iterable[int]) -> set[int]:
        """Component indices reachable from ``entry_comps`` (inclusive)."""
        seen: set[int] = set()
        stack = [ci for ci in entry_comps if ci not in seen]
        for ci in stack:
            seen.add(ci)
        while stack:
            ci = stack.pop()
            for cj in self.comp_succ[ci]:
                if cj not in seen:
                    seen.add(cj)
                    stack.append(cj)
        return seen
