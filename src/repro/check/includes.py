"""Include-graph lints (PDT041, PDT042) over the inclusion forest.

* **PDT041** — a file that is included but contributes nothing: no PDB
  item is located in it and nothing it (transitively) includes
  contributes either.  System headers are exempt.
* **PDT042** — an ``#include`` cycle, reported with the cycle path.
  Real preprocessors break these with guards, but a merged or
  hand-maintained PDB can still record one, and the inclusion-tree
  renderer would unroll it forever.
"""

from __future__ import annotations

from repro.check.core import Check, CheckContext, Finding, Rule, register
from repro.check.graph import Condensation

UNUSED_INCLUDE = Rule(
    id="PDT041",
    name="unused-include",
    severity="warning",
    summary="File is included but contributes no program-database items",
)
INCLUDE_CYCLE = Rule(
    id="PDT042",
    name="include-cycle",
    severity="warning",
    summary="Include graph contains a cycle",
)


@register
class IncludeCheck(Check):
    name = "includes"
    rules = (UNUSED_INCLUDE, INCLUDE_CYCLE)

    def run(self, ctx: CheckContext) -> list[Finding]:
        files = ctx.pdb.getFileVec()
        by_ref = {f.ref: f for f in files}
        succ = {f.ref: [inc.ref for inc in f.includes()] for f in files}
        item_counts = ctx.file_items_map()
        findings: list[Finding] = []

        cond = Condensation([f.ref for f in files], lambda ref: succ[ref])
        for ci, comp in enumerate(cond.sccs):
            if not cond.is_cycle(ci):
                continue
            names = [by_ref[ref].name() for ref in comp]
            path = " -> ".join([*names, names[0]])
            findings.append(
                Finding(
                    rule=INCLUDE_CYCLE,
                    item=names[0],
                    message=f"include cycle: {path}",
                    file=names[0],
                    line=1,
                    column=1,
                )
            )

        # a file contributes if items live in it, or anything it includes
        # contributes; propagate over the condensation (cycle-safe)
        contributes: dict[int, bool] = {}
        for ci in range(len(cond.sccs)):  # reverse topological order
            val = any(item_counts.get(ref, 0) > 0 for ref in cond.sccs[ci])
            val = val or any(contributes[cj] for cj in cond.comp_succ[ci])
            contributes[ci] = val

        included_by: dict = {}
        for f in files:
            for inc in f.includes():
                included_by.setdefault(inc.ref, []).append(f)
        for f in files:
            if f.ref not in included_by:
                continue  # a root (translation unit), not an include
            if f.isSystem():
                continue
            if contributes[cond.comp_of[f.ref]]:
                continue
            includers = ", ".join(sorted(i.name() for i in included_by[f.ref]))
            findings.append(
                Finding(
                    rule=UNUSED_INCLUDE,
                    item=f.name(),
                    message=(
                        f"file '{f.name()}' (included by {includers}) "
                        f"contributes no program-database items"
                    ),
                    file=f.name(),
                    line=1,
                    column=1,
                )
            )
        return findings
