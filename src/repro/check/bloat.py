"""Template-instantiation bloat (PDT011, PDT012).

The paper's central contribution — matching every instantiation back to
its originating template by source location — is what makes this check
possible: findings are grouped *per template*, so "Box is instantiated
5 times, 3 of them never used" falls straight out of the back-links.

Two rules:

* **PDT011** — an instantiated routine with a generated *body* that
  nothing calls.  In used-mode PDBs unused members are declaration-only
  (no body, no bloat), so this fires mainly on ``--tall``/explicit
  instantiations, where the compiler really did emit the code.  Only
  out-of-line bodies count for member functions: an inline body inside
  the class extent is part of the class definition, not separate bloat.
* **PDT012** — an instantiated class no one uses: no member called from
  outside the class, not referenced by any other item's types or bases,
  and no derived classes.  (A class's own constructors reference it
  through their signatures; those self-references are excluded.)
"""

from __future__ import annotations

from repro.check.core import Check, CheckContext, Finding, Rule, register
from repro.ductape.items import PdbClass, PdbRoutine

UNUSED_INSTANTIATION = Rule(
    id="PDT011",
    name="unused-instantiation",
    severity="warning",
    summary="Template-instantiated routine has a generated body but no callers",
)
UNUSED_CLASS_INSTANTIATION = Rule(
    id="PDT012",
    name="unused-class-instantiation",
    severity="warning",
    summary="Template-instantiated class is never used "
    "(no external member calls, type references, or derived classes)",
)


@register
class TemplateBloatCheck(Check):
    name = "bloat"
    rules = (UNUSED_INSTANTIATION, UNUSED_CLASS_INSTANTIATION)

    def run(self, ctx: CheckContext) -> list[Finding]:
        callers = ctx.callers_map()
        derived = ctx.derived_map()
        class_refs = ctx.class_refs_map()

        # resolve template back-links once per item; the provenance pass
        # and the per-template totals below share them
        class_tmpl = [(c, c.template()) for c in ctx.classes]
        routine_tmpl = [(r, r.template()) for r in ctx.routines]

        dead_classes: list[PdbClass] = []
        dead_class_refs: set = set()
        for c, tmpl in class_tmpl:
            if tmpl is None:
                continue
            if derived.get(c.ref):
                continue
            owners = class_refs.get(c.ref, set())
            if any(owner != c.ref for owner in owners):
                continue
            if any(
                any(caller.parentClass() is not c for caller in callers.get(m.ref, []))
                for m in c.memberFunctions()
            ):
                continue
            dead_classes.append(c)
            dead_class_refs.add(c.ref)

        dead_routines: list[PdbRoutine] = []
        for r, tmpl in routine_tmpl:
            if tmpl is None or r.name() == "main":
                continue
            if callers.get(r.ref):
                continue
            body = r.bodyBegin()
            if not body.known:
                continue  # declaration-only (used mode): no code generated
            parent = r.parentClass()
            if parent is not None:
                if parent.ref in dead_class_refs:
                    continue  # already reported as PDT012 on the class
                if not _out_of_line(r, parent):
                    continue
            dead_routines.append(r)

        # per-template grouping: total vs unused instantiation counts
        totals: dict = {}
        for _item, t in [*class_tmpl, *routine_tmpl]:
            if t is not None:
                totals[t.ref] = totals.get(t.ref, 0) + 1
        unused: dict = {}
        for item in [*dead_classes, *dead_routines]:
            t = item.template()
            unused[t.ref] = unused.get(t.ref, 0) + 1

        findings: list[Finding] = []
        for c in dead_classes:
            t = c.template()
            findings.append(
                self._finding(
                    UNUSED_CLASS_INSTANTIATION,
                    c,
                    f"class '{c.fullName()}' instantiated from template "
                    f"'{t.fullName()}' is never used "
                    f"({unused[t.ref]} of {totals[t.ref]} instantiations of this template unused)",
                )
            )
        for r in dead_routines:
            t = r.template()
            findings.append(
                self._finding(
                    UNUSED_INSTANTIATION,
                    r,
                    f"routine '{r.fullName()}' instantiated from template "
                    f"'{t.fullName()}' has a generated body but no callers "
                    f"({unused[t.ref]} of {totals[t.ref]} instantiations of this template unused)",
                )
            )
        return findings

    @staticmethod
    def _finding(rule: Rule, item, message: str) -> Finding:
        loc = item.location()
        return Finding(
            rule=rule,
            item=item.fullName(),
            message=message,
            file=loc.file().name() if loc.known else None,
            line=loc.line(),
            column=loc.col(),
        )


def _out_of_line(r: PdbRoutine, parent: PdbClass) -> bool:
    """Whether a member routine's body lies outside its class's extent.

    An inline body (inside the ``cpos`` span) exists in every TU that
    uses the class — that is the class definition, not bloat; an
    out-of-line body is a genuinely instantiated member definition.
    """
    body = r.bodyBegin()
    begin = parent.headerBegin()
    end = parent.bodyEnd()
    if not (body.known and begin.known and end.known):
        return True  # class extent unknown: treat the body as separate
    if body.file() is not begin.file():
        return True
    return not (begin.line() <= body.line() <= end.line())
