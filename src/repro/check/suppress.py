"""Finding suppression via TAU select-file conventions.

The same file format (and parser) TAU uses to scope instrumentation
(:mod:`repro.tau.selectfile`) scopes findings here::

    BEGIN_EXCLUDE_LIST
    PDT001:legacy::#
    helper#
    END_EXCLUDE_LIST

    BEGIN_FILE_EXCLUDE_LIST
    third_party/*
    END_FILE_EXCLUDE_LIST

Name patterns (``#`` = multi-character wildcard) match a finding's
*item* name both bare and prefixed with its rule id (``PDT001:name``),
so a suppression can target one rule or every rule for an item.  File
patterns are ``fnmatch`` globs against the finding's file.  Include
lists, when present, are exhaustive — only matching findings are kept.
"""

from __future__ import annotations

from repro.check.core import Finding
from repro.tau.selectfile import SelectiveRules


class Suppressions:
    """A keep/drop predicate over findings, from select-file rules."""

    def __init__(self, rules: SelectiveRules):
        self.rules = rules

    @classmethod
    def from_text(cls, text: str) -> "Suppressions":
        return cls(SelectiveRules.parse(text))

    @classmethod
    def load(cls, path: str) -> "Suppressions":
        with open(path) as f:
            return cls.from_text(f.read())

    def __call__(self, finding: Finding) -> bool:
        """True when the finding is *kept* (not suppressed)."""
        if finding.file and not self.rules.allows_file(finding.file):
            return False
        tagged = f"{finding.rule.id}:{finding.item}"
        if self.rules.include:
            if not (
                self.rules.allows_routine(finding.item)
                or self.rules.allows_routine(tagged)
            ):
                return False
            return True
        return self.rules.allows_routine(finding.item) and self.rules.allows_routine(
            tagged
        )
