"""SILOON's routine management structures and call dispatch.

Paper Section 4.2: the generated bridging functions "register
user-designated library routines with SILOON's routine management
structures, and process function calls from the scripting languages."

:class:`Bridge` is that structure: a registry keyed by mangled name,
plus a dispatcher.  The "back-end computational engine" is the execution
simulator (DESIGN.md substitution): a dispatched call simulates the
routine's call subtree on the virtual machine and returns a default
value of the routine's return type, while the registry records call
statistics a test can assert on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.ductape.items import PdbRoutine
from repro.ductape.pdb import PDB
from repro.tau.machine import CostModel, uniform_model
from repro.tau.runtime import Profiler


@dataclass
class RegisteredRoutine:
    """One entry in the routine management structure."""

    mangled: str
    full_name: str
    routine: PdbRoutine
    is_member: bool
    is_static: bool
    is_constructor: bool
    param_count: int
    required_params: int
    return_kind: str
    calls: int = 0


class SiloonError(Exception):
    """Raised on bad dispatches (unknown routine, arity mismatch)."""


class Bridge:
    """Routine registry + dispatcher into the computational engine."""

    def __init__(self, pdb: PDB, cost: Optional[CostModel] = None):
        self.pdb = pdb
        self.cost = cost or uniform_model()
        self.registry: dict[str, RegisteredRoutine] = {}
        self.profiler = Profiler()
        self._object_counter = 0

    # -- registration ----------------------------------------------------

    def register(self, mangled: str, routine: PdbRoutine) -> RegisteredRoutine:
        sig = routine.signature()
        params = sig.argumentTypes() if sig is not None else []
        ret = sig.returnType() if sig is not None else None
        # resolve typedefs so default-value synthesis sees the real type
        guard = 0
        while ret is not None and getattr(ret, "kind", lambda: "")() == "typedef" and guard < 8:
            ret = ret.referencedType()
            guard += 1
        entry = RegisteredRoutine(
            mangled=mangled,
            full_name=routine.fullName(),
            routine=routine,
            is_member=routine.parentClass() is not None,
            is_static=routine.isStatic(),
            is_constructor=routine.kind() == PdbRoutine.RO_CTOR,
            param_count=len(params),
            required_params=len(params),  # defaults tracked by generator
            return_kind=ret.name() if ret is not None else "void",
        )
        self.registry[mangled] = entry
        return entry

    def lookup(self, mangled: str) -> RegisteredRoutine:
        entry = self.registry.get(mangled)
        if entry is None:
            raise SiloonError(f"routine not registered: {mangled}")
        return entry

    # -- dispatch ------------------------------------------------------------

    def construct(self, ctor_mangles: list[str], *args: Any) -> Any:
        """Constructor overload dispatch: pick the registered constructor
        whose arity admits ``args`` (generated ``__init__`` entry point)."""
        entries = [self.lookup(m) for m in ctor_mangles]
        viable = [
            e for e in entries
            if e.required_params <= len(args) <= e.param_count
        ]
        chosen = viable[0] if viable else (entries[0] if entries else None)
        if chosen is None:
            raise SiloonError("class has no bound constructor")
        return self.call(chosen.mangled, *args)

    def call(self, mangled: str, *args: Any) -> Any:
        """Process a call from the scripting language: validate, run the
        engine, synthesise a return value."""
        entry = self.lookup(mangled)
        given = len(args) - (1 if entry.is_member and not entry.is_constructor and not entry.is_static else 0)
        if given > entry.param_count:
            raise SiloonError(
                f"{entry.full_name}: too many arguments ({given} > {entry.param_count})"
            )
        entry.calls += 1
        self._simulate(entry.routine)
        if entry.is_constructor:
            self._object_counter += 1
            return ObjectHandle(self, entry, self._object_counter)
        return _default_value(entry.return_kind)

    def _simulate(self, routine: PdbRoutine) -> None:
        """Run the routine's call subtree on the virtual engine."""
        from repro.tau.simulate import ExecutionSimulator, WorkloadSpec

        spec = WorkloadSpec(entry=routine.fullName(), cost=self.cost)
        try:
            sim = ExecutionSimulator(self.pdb, spec)
        except ValueError:
            return  # declaration-only routine: nothing to execute
        result = sim.run()
        prof = self.profiler.profile(0)
        for name, t in result.profile(0).timers.items():
            agg = prof.timer(name)
            agg.calls += t.calls
            agg.inclusive += t.inclusive
            agg.exclusive += t.exclusive
        prof.advance(result.profile(0).total_time())

    # -- introspection ----------------------------------------------------------

    def call_counts(self) -> dict[str, int]:
        return {m: e.calls for m, e in self.registry.items() if e.calls}

    def total_engine_time(self) -> float:
        return self.profiler.profile(0).total_time()


@dataclass
class ObjectHandle:
    """A scripting-side handle to an engine-side C++ object."""

    bridge: Bridge = field(repr=False)
    ctor: RegisteredRoutine = field(repr=False)
    oid: int = 0

    @property
    def cpp_class(self) -> str:
        parent = self.ctor.routine.parentClass()
        return parent.fullName() if parent is not None else self.ctor.full_name

    def __repr__(self) -> str:
        return f"<{self.cpp_class} object #{self.oid}>"


def _default_value(return_kind: str) -> Any:
    """Synthesise a scripting-language value for a C++ return type."""
    rk = return_kind
    if rk == "void":
        return None
    if rk in ("bool",):
        return False
    if any(w in rk for w in ("int", "long", "short", "char")):
        return 0
    if any(w in rk for w in ("double", "float")):
        return 0.0
    if "char *" in rk or rk == "string":
        return ""
    return None
