"""SILOON code generation: wrappers and bridging code from a PDB.

Paper Figure 8: PDT parses the user's library, SILOON generates

* **bridging code** — "language-independent", engine-side functions that
  register routines with the routine management structures (rendered
  here as the C-linkage source text the real SILOON would compile), and
* **wrapper functions** — "written in the scripting language", providing
  a natural interface: one Python class per C++ class, one Python
  function per free routine, overloads disambiguated by suffix, C++
  operators mapped to Python dunder methods where natural.

Template policy, verbatim from the paper: "the user must explicitly
instantiate such templates in the parsed code; only these instantiations
are included in PDT's output."  :func:`propose_instantiations`
implements the paper's *future-work extension*: presenting the template
list and generating explicit instantiation requests for selected
templates.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.ductape.items import PdbClass, PdbRoutine, PdbTemplate
from repro.ductape.pdb import PDB
from repro.siloon.bridge import Bridge
from repro.siloon.mangler import mangle_routine, mangle_text

#: C++ operator -> natural Python method name
_OPERATOR_NAMES = {
    "operator[]": "__getitem__",
    "operator()": "__call__",
    "operator==": "__eq__",
    "operator!=": "__ne__",
    "operator<": "__lt__",
    "operator>": "__gt__",
    "operator<=": "__le__",
    "operator>=": "__ge__",
    "operator+": "__add__",
    "operator-": "__sub__",
    "operator*": "__mul__",
    "operator/": "__truediv__",
    "operator=": "assign",
    "operator+=": "iadd",
    "operator-=": "isub",
    "operator<<": "lshift",
    "operator>>": "rshift",
}


@dataclass
class RoutineBinding:
    """One routine exposed to the scripting language."""

    routine: PdbRoutine
    mangled: str
    python_name: str
    owner: Optional[PdbClass] = None

    @property
    def is_constructor(self) -> bool:
        return self.routine.kind() == PdbRoutine.RO_CTOR


@dataclass
class ClassBinding:
    """One class exposed to the scripting language."""

    cls: PdbClass
    python_name: str
    constructors: list[RoutineBinding] = field(default_factory=list)
    methods: list[RoutineBinding] = field(default_factory=list)


@dataclass
class BindingSet:
    """Everything SILOON generated for one library."""

    classes: list[ClassBinding] = field(default_factory=list)
    functions: list[RoutineBinding] = field(default_factory=list)
    wrapper_source: str = ""
    bridging_source: str = ""

    def all_routine_bindings(self) -> list[RoutineBinding]:
        out: list[RoutineBinding] = list(self.functions)
        for cb in self.classes:
            out.extend(cb.constructors)
            out.extend(cb.methods)
        return out

    def register_all(self, bridge: Bridge) -> int:
        """Run the bridging code's registration step."""
        n = 0
        for rb in self.all_routine_bindings():
            entry = bridge.register(rb.mangled, rb.routine)
            entry.required_params = rb.routine.requiredParameterCount()
            n += 1
        return n

    def make_module(self, bridge: Bridge) -> dict[str, Any]:
        """Execute the generated Python wrapper source against a bridge;
        returns the module namespace (classes and functions ready to use)."""
        namespace: dict[str, Any] = {"_bridge": bridge}
        exec(compile(self.wrapper_source, "<siloon-wrapper>", "exec"), namespace)
        return namespace


def generate_bindings(
    pdb: PDB,
    class_names: Optional[list[str]] = None,
    include_free_functions: bool = True,
    skip_files: tuple[str, ...] = (),
) -> BindingSet:
    """Generate scripting bindings for the classes/functions in a PDB.

    ``class_names`` restricts binding to the named classes (full names);
    default is every defined class.  ``skip_files`` excludes entities
    whose defining file matches one of the given substrings (e.g. the
    mini-STL headers when binding a user library)."""
    bs = BindingSet()
    taken: dict[str, int] = {}
    for cls in pdb.getClassVec():
        if class_names is not None and cls.fullName() not in class_names and cls.name() not in class_names:
            continue
        if _in_skipped_file(cls, skip_files):
            continue
        if not cls.memberFunctions():
            continue
        cb = ClassBinding(cls=cls, python_name=_python_class_name(cls, taken))
        method_names: dict[str, int] = {}
        for r in cls.memberFunctions():
            if r.access() not in ("pub", "NA"):
                continue
            kind = r.kind()
            if kind == PdbRoutine.RO_DTOR:
                continue  # lifetime handled by the scripting language
            rb = RoutineBinding(
                routine=r,
                mangled=mangle_routine(r),
                python_name=_python_method_name(r, method_names),
                owner=cls,
            )
            if kind == PdbRoutine.RO_CTOR:
                cb.constructors.append(rb)
            else:
                cb.methods.append(rb)
        bs.classes.append(cb)
    if include_free_functions:
        fn_names: dict[str, int] = {}
        for r in pdb.getRoutineVec():
            if r.parentClass() is not None:
                continue
            if _in_skipped_file(r, skip_files):
                continue
            if class_names is not None:
                continue  # explicit class selection: no free functions
            bs.functions.append(
                RoutineBinding(
                    routine=r,
                    mangled=mangle_routine(r),
                    python_name=_python_method_name(r, fn_names),
                )
            )
    bs.wrapper_source = _render_wrapper(bs)
    bs.bridging_source = _render_bridging(bs)
    return bs


def propose_instantiations(
    pdb: PDB, default_args: tuple[str, ...] = ("double", "int")
) -> list[tuple[PdbTemplate, str]]:
    """The paper's future-work extension: list class templates that have
    no instantiation in the PDB and generate explicit instantiation
    directives the user can add to the parsed code."""
    instantiated: set = set()
    for c in pdb.getClassVec():
        te = c.template()
        if te is not None:
            instantiated.add(te.ref)
    proposals: list[tuple[PdbTemplate, str]] = []
    for te in pdb.getTemplateVec():
        if te.kind() != PdbTemplate.TE_CLASS:
            continue
        if te.ref in instantiated:
            continue
        n_params = max(1, te.text().count("class ") + te.text().count("typename "))
        header = te.text().split("class " + te.name())[0] if te.text() else ""
        n_params = max(1, header.count("class") + header.count("typename"))
        args = ", ".join(default_args[i % len(default_args)] for i in range(n_params))
        proposals.append((te, f"template class {te.fullName()}<{args}>;"))
    return proposals


# -- naming -----------------------------------------------------------------


def _python_class_name(cls: PdbClass, taken: dict[str, int]) -> str:
    name = re.sub(r"[^0-9a-zA-Z_]+", "_", cls.name()).strip("_")
    if not name or name[0].isdigit():
        name = "C" + name
    return _dedupe(name, taken)


def _python_method_name(r: PdbRoutine, taken: dict[str, int]) -> str:
    name = r.name()
    if r.kind() == PdbRoutine.RO_OP or name.startswith("operator"):
        mapped = _OPERATOR_NAMES.get(name.split("<")[0].strip())
        if mapped is not None:
            return _dedupe(mapped, taken)
        name = mangle_text(name)[len("siloon_"):]
    name = re.sub(r"[^0-9a-zA-Z_]+", "_", name).strip("_")
    if not name or name[0].isdigit():
        name = "f_" + name
    return _dedupe(name, taken)


def _dedupe(name: str, taken: dict[str, int]) -> str:
    n = taken.get(name, 0)
    taken[name] = n + 1
    return name if n == 0 else f"{name}_{n + 1}"


def _in_skipped_file(item, skip_files: tuple[str, ...]) -> bool:
    loc = item.location()
    if not loc.known:
        return False
    fname = loc.file().name()
    return any(s in fname for s in skip_files)


# -- rendering ------------------------------------------------------------------


def _render_wrapper(bs: BindingSet) -> str:
    """The script-side wrapper module (real, executable Python)."""
    lines: list[str] = [
        '"""SILOON-generated wrapper module (do not edit).',
        "",
        "Provides a natural scripting interface to the C++ library; all",
        "calls route through the language-independent bridge.",
        '"""',
        "",
    ]
    for cb in bs.classes:
        lines.append(f"class {cb.python_name}:")
        lines.append(f'    """Wrapper for C++ class {cb.cls.fullName()}."""')
        lines.append(f"    _cpp_name = {cb.cls.fullName()!r}")
        lines.append("")
        if cb.constructors:
            mangles = [c.mangled for c in cb.constructors]
            lines.append("    def __init__(self, *args):")
            lines.append(
                f"        self._handle = _bridge.construct({mangles!r}, *args)"
            )
        else:
            lines.append("    def __init__(self):")
            lines.append("        self._handle = None")
        lines.append("")
        for rb in cb.methods:
            if rb.routine.isStatic():
                lines.append("    @staticmethod")
                lines.append(f"    def {rb.python_name}(*args):")
                lines.append(f"        return _bridge.call({rb.mangled!r}, *args)")
            else:
                lines.append(f"    def {rb.python_name}(self, *args):")
                lines.append(
                    f"        return _bridge.call({rb.mangled!r}, self._handle, *args)"
                )
            lines.append("")
    for rb in bs.functions:
        lines.append(f"def {rb.python_name}(*args):")
        lines.append(f'    """Wrapper for C++ function {rb.routine.fullName()}."""')
        lines.append(f"    return _bridge.call({rb.mangled!r}, *args)")
        lines.append("")
    return "\n".join(lines)


def _render_bridging(bs: BindingSet) -> str:
    """The engine-side bridging code (C-linkage source text, as the real
    SILOON would compile against the library)."""
    lines: list[str] = [
        "/* SILOON-generated bridging code (do not edit). */",
        '#include "siloon_runtime.h"',
        "",
    ]
    for rb in bs.all_routine_bindings():
        sig = rb.routine.signature()
        sig_text = sig.name() if sig is not None else "()"
        lines.append(f"/* {rb.routine.fullName()} {sig_text} */")
        lines.append(
            f'extern "C" SiloonValue {rb.mangled}(SiloonArgs args) {{'
        )
        lines.append(
            f"    return siloon_dispatch(\"{rb.mangled}\", args);"
        )
        lines.append("}")
        lines.append("")
    lines.append('extern "C" void siloon_register_all(SiloonRegistry * registry) {')
    for rb in bs.all_routine_bindings():
        lines.append(
            f'    siloon_register(registry, "{rb.mangled}", (SiloonFn) {rb.mangled});'
        )
    lines.append("}")
    return "\n".join(lines)
