"""siloon-gen — generate scripting bindings for a C++ library via PDT
(the SILOON workflow of paper Section 4.2 / Figure 8)."""

from __future__ import annotations

import argparse
import os
from typing import Optional

from repro.analyzer import analyze
from repro.cpp import Frontend, FrontendOptions
from repro.ductape.pdb import PDB
from repro.siloon.generator import generate_bindings, propose_instantiations


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point."""
    ap = argparse.ArgumentParser(
        prog="siloon-gen",
        description="generate scripting-language bindings from C++ sources",
    )
    ap.add_argument("source", help="library translation unit")
    ap.add_argument("-I", dest="include_paths", action="append", default=[])
    ap.add_argument("-o", "--outdir", default="siloon-out")
    ap.add_argument(
        "--class", dest="classes", action="append", help="bind only these classes"
    )
    ap.add_argument(
        "--list-templates",
        action="store_true",
        help="list uninstantiated class templates and proposed instantiations",
    )
    args = ap.parse_args(argv)
    fe = Frontend(FrontendOptions(include_paths=args.include_paths))
    tree = fe.compile(args.source)
    pdb = PDB(analyze(tree))
    if args.list_templates:
        for te, directive in propose_instantiations(pdb):
            print(f"{te.fullName():<30} {directive}")
        return 0
    bs = generate_bindings(pdb, class_names=args.classes)
    os.makedirs(args.outdir, exist_ok=True)
    with open(os.path.join(args.outdir, "wrapper.py"), "w") as f:
        f.write(bs.wrapper_source)
    with open(os.path.join(args.outdir, "bridging.cpp"), "w") as f:
        f.write(bs.bridging_source)
    n = len(bs.all_routine_bindings())
    print(
        f"{args.outdir}: {len(bs.classes)} classes, {len(bs.functions)} functions, "
        f"{n} routines bound"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
