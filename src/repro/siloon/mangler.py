"""SILOON name mangling.

Paper Section 4.2: "Templates are treated the same as other entities by
SILOON, with the exception that non-alphanumeric characters in the name
are mangled (i.e., transformed to include information on types and
qualifiers), so that they can be accessed in scripting languages."

The encoding must be an *injective* map from C++ entity names (which
contain ``<>,:~()&*`` and spaces) to scripting-language identifiers —
property-tested in the suite.  Scheme: alphanumerics pass through; every
other character becomes ``_xNN`` (two hex digits); ``_`` itself becomes
``_x5f``; a ``siloon_`` prefix keeps the namespace clean and guarantees
the result never starts with a digit.
"""

from __future__ import annotations

from repro.ductape.items import PdbRoutine

_PREFIX = "siloon_"

#: readable aliases for the most common specials (still injective: the
#: alias table is prefix-free with respect to hex escapes because every
#: alias is ``_`` + letters and escapes are ``_x`` + 2 hex digits, with
#: ``x`` excluded from alias spellings).
_ALIASES = {
    "<": "_lt",
    ">": "_gt",
    ",": "_cm",
    ":": "_cl",
    "~": "_dt",
    "(": "_lp",
    ")": "_rp",
    "&": "_rf",
    "*": "_pt",
    " ": "_sp",
    "[": "_lb",
    "]": "_rb",
    "=": "_eq",
    "+": "_pl",
    "-": "_mi",
    "/": "_dv",
    "!": "_nt",
    "%": "_pc",
    "|": "_or",
    "^": "_ca",
}


def mangle_text(text: str) -> str:
    """Mangle arbitrary text into an identifier (injective)."""
    out: list[str] = [_PREFIX]
    for ch in text:
        if ch.isalnum():
            out.append(ch)
        elif ch == "_":
            out.append("_x5f")
        elif ch in _ALIASES:
            out.append(_ALIASES[ch])
        else:
            out.append(f"_x{ord(ch):02x}")
    return "".join(out)


def mangle_routine(r: PdbRoutine) -> str:
    """Mangle a routine's full name *and* signature — overloads of the
    same name map to distinct identifiers (types and qualifiers are part
    of the encoding, as the paper specifies)."""
    sig = r.signature()
    sig_text = sig.name() if sig is not None else "()"
    return mangle_text(f"{r.fullName()} {sig_text}")


def demangle_hint(mangled: str) -> str:
    """Best-effort reverse for diagnostics (exact for this encoding)."""
    s = mangled
    if s.startswith(_PREFIX):
        s = s[len(_PREFIX):]
    rev = {v: k for k, v in _ALIASES.items()}
    out: list[str] = []
    i = 0
    while i < len(s):
        if s[i] == "_" and i + 3 <= len(s) and s[i + 1] == "x":
            try:
                out.append(chr(int(s[i + 2 : i + 4], 16)))
                i += 4
                continue
            except ValueError:
                pass
        if s[i] == "_" and i + 3 <= len(s) and s[i : i + 3] in rev:
            out.append(rev[s[i : i + 3]])
            i += 3
            continue
        out.append(s[i])
        i += 1
    return "".join(out)
