"""SILOON — Scripting Interface Languages for Object-Oriented Numerics
(paper Section 4.2).

The paper's second PDT application: "SILOON uses PDT to parse source
code from existing object-oriented class libraries and extract
information regarding the interfaces to functions and class methods.
This information is then used to generate bridging code, which, when
compiled, provides the run-time support for linking user scripts with
back-end computational engines."

* :mod:`repro.siloon.mangler` — name mangling so templated/operator
  names are accessible from scripting languages,
* :mod:`repro.siloon.generator` — wrapper (script-side) and bridging
  (engine-side) code generation from a PDB,
* :mod:`repro.siloon.bridge` — the routine management structures:
  registration and call dispatch into the computational engine (here,
  the execution simulator — see DESIGN.md substitutions).
"""

from repro.siloon.bridge import Bridge, RegisteredRoutine
from repro.siloon.generator import (
    BindingSet,
    generate_bindings,
    propose_instantiations,
)
from repro.siloon.mangler import demangle_hint, mangle_routine, mangle_text

__all__ = [
    "BindingSet",
    "Bridge",
    "RegisteredRoutine",
    "demangle_hint",
    "generate_bindings",
    "mangle_routine",
    "mangle_text",
    "propose_instantiations",
]
