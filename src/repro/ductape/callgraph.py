"""Static call tree (paper Section 3.3 / Figure 5).

"Functions instantiated from templates are automatically included in the
vector of called functions" — nothing special is needed here because the
IL Analyzer resolved template calls to the instantiated routines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro.ductape.items import ACTIVE, INACTIVE, PdbRoutine

if TYPE_CHECKING:  # pragma: no cover
    from repro.ductape.pdb import PDB


class CallTree:
    """The static call graph over a PDB's routines."""

    def __init__(self, pdb: "PDB"):
        self.pdb = pdb
        self.routines = pdb.getRoutineVec()
        called = set()
        for r in self.routines:
            for c in r.callees():
                callee = c.call()
                if callee is not None:
                    called.add(callee.ref)
        #: routines nobody calls — the tree roots (main among them)
        self.roots = [r for r in self.routines if r.ref not in called]

    def root_named(self, name: str) -> Optional[PdbRoutine]:
        for r in self.roots:
            if r.name() == name or r.fullName() == name:
                return r
        return None

    def walk(
        self, root: PdbRoutine
    ) -> Iterator[tuple[PdbRoutine, int, bool, bool]]:
        """DFS yielding (routine, depth, is_virtual_call, is_cycle).

        Cycles are detected with the routine flag, exactly as
        printFuncTree does in paper Figure 5.  The traversal is an
        explicit-stack DFS: call chains from the scaling corpora go
        deeper than Python's recursion limit allows a recursive
        generator to."""
        yield root, -1, False, False
        root.flag(ACTIVE)
        stack: list[tuple[PdbRoutine, Iterator, int]] = [
            (root, iter(root.callees()), 0)
        ]
        try:
            while stack:
                r, calls, depth = stack[-1]
                call = next(calls, None)
                if call is None:
                    stack.pop()
                    r.flag(INACTIVE)
                    continue
                callee = call.call()
                if callee is None:
                    continue
                cyclic = callee.flag() == ACTIVE
                yield callee, depth, call.isVirtual(), cyclic
                if not cyclic:
                    callee.flag(ACTIVE)
                    stack.append((callee, iter(callee.callees()), depth + 1))
        finally:
            # a closed (abandoned) generator must still reset the flags
            for r, _calls, _depth in stack:
                r.flag(INACTIVE)

    def reachable_from(self, root: PdbRoutine) -> list[PdbRoutine]:
        seen: dict = {}
        for r, _depth, _virt, _cyc in self.walk(root):
            seen.setdefault(r.ref, r)
        return list(seen.values())

    def edge_count(self) -> int:
        return sum(len(r.callees()) for r in self.routines)
