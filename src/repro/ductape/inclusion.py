"""Source-file inclusion tree (paper Section 3.3 / pdbtree)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.ductape.items import PdbFile

if TYPE_CHECKING:  # pragma: no cover
    from repro.ductape.pdb import PDB


class InclusionTree:
    """The ``#include`` forest over a PDB's source files."""

    def __init__(self, pdb: "PDB"):
        self.pdb = pdb
        self.files = pdb.getFileVec()
        included = {inc.ref for f in self.files for inc in f.includes()}
        #: files nothing includes — the translation-unit roots
        self.roots = [f for f in self.files if f.ref not in included]

    def children(self, f: PdbFile) -> list[PdbFile]:
        return f.includes()

    def walk(self, root: PdbFile) -> Iterator[tuple[PdbFile, int]]:
        """Depth-first (file, depth) pairs; repeated files are cut."""
        seen: set = set()

        def rec(f: PdbFile, depth: int):
            yield f, depth
            if f.ref in seen:
                return
            seen.add(f.ref)
            for inc in f.includes():
                yield from rec(inc, depth + 1)

        yield from rec(root, 0)

    def render(self) -> str:
        """Indented text rendering, one root per block."""
        lines: list[str] = []
        for root in self.roots:
            for f, depth in self.walk(root):
                indent = "    " * depth
                arrow = "`--> " if depth else ""
                lines.append(f"{indent}{arrow}{f.name()}")
        return "\n".join(lines)
