"""Source-file inclusion tree (paper Section 3.3 / pdbtree)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.ductape.items import PdbFile

if TYPE_CHECKING:  # pragma: no cover
    from repro.ductape.pdb import PDB


class InclusionTree:
    """The ``#include`` forest over a PDB's source files."""

    def __init__(self, pdb: "PDB"):
        self.pdb = pdb
        self.files = pdb.getFileVec()
        included = {inc.ref for f in self.files for inc in f.includes()}
        #: files nothing includes — the translation-unit roots
        self.roots = [f for f in self.files if f.ref not in included]

    def children(self, f: PdbFile) -> list[PdbFile]:
        return f.includes()

    def walk(self, root: PdbFile) -> Iterator[tuple[PdbFile, int]]:
        """Depth-first (file, depth) pairs; repeated files are cut.

        Explicit-stack preorder DFS — include chains from the scaling
        corpora can exceed Python's recursion limit."""
        seen: set = set()
        stack: list[tuple[PdbFile, int]] = [(root, 0)]
        while stack:
            f, depth = stack.pop()
            yield f, depth
            if f.ref in seen:
                continue
            seen.add(f.ref)
            for inc in reversed(f.includes()):
                stack.append((inc, depth + 1))

    def render(self) -> str:
        """Indented text rendering, one root per block."""
        lines: list[str] = []
        for root in self.roots:
            for f, depth in self.walk(root):
                indent = "    " * depth
                arrow = "`--> " if depth else ""
                lines.append(f"{indent}{arrow}{f.name()}")
        return "\n".join(lines)
