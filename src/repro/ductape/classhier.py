"""Class hierarchy (paper Section 3.3 / pdbtree)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.ductape.items import PdbClass

if TYPE_CHECKING:  # pragma: no cover
    from repro.ductape.pdb import PDB


class ClassHierarchy:
    """The inheritance forest over a PDB's classes."""

    def __init__(self, pdb: "PDB"):
        self.pdb = pdb
        self.classes = pdb.getClassVec()
        #: classes with no bases — hierarchy roots
        self.roots = [c for c in self.classes if not c.baseClasses()]

    def derived(self, cls: PdbClass) -> list[PdbClass]:
        return cls.derivedClasses()

    def walk(self, root: PdbClass) -> Iterator[tuple[PdbClass, int]]:
        seen: set = set()

        def rec(c: PdbClass, depth: int):
            yield c, depth
            if c.ref in seen:
                return
            seen.add(c.ref)
            for d in self.derived(c):
                yield from rec(d, depth + 1)

        yield from rec(root, 0)

    def depth_of(self, cls: PdbClass) -> int:
        """Longest base-class chain above ``cls``."""
        bases = cls.baseClasses()
        if not bases:
            return 0
        return 1 + max(self.depth_of(b) for _, _, b in bases)

    def render(self) -> str:
        lines: list[str] = []
        for root in self.roots:
            for c, depth in self.walk(root):
                indent = "    " * depth
                arrow = "`--> " if depth else ""
                lines.append(f"{indent}{arrow}{c.fullName()}")
        return "\n".join(lines)
