"""Class hierarchy (paper Section 3.3 / pdbtree)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.ductape.items import PdbClass

if TYPE_CHECKING:  # pragma: no cover
    from repro.ductape.pdb import PDB


class ClassHierarchy:
    """The inheritance forest over a PDB's classes."""

    def __init__(self, pdb: "PDB"):
        self.pdb = pdb
        self.classes = pdb.getClassVec()
        #: classes with no bases — hierarchy roots
        self.roots = [c for c in self.classes if not c.baseClasses()]
        #: memo for :meth:`depth_of` (class ref -> depth)
        self._depths: dict = {}

    def derived(self, cls: PdbClass) -> list[PdbClass]:
        return cls.derivedClasses()

    def walk(self, root: PdbClass) -> Iterator[tuple[PdbClass, int]]:
        seen: set = set()

        def rec(c: PdbClass, depth: int):
            yield c, depth
            if c.ref in seen:
                return
            seen.add(c.ref)
            for d in self.derived(c):
                yield from rec(d, depth + 1)

        yield from rec(root, 0)

    def depth_of(self, cls: PdbClass) -> int:
        """Longest base-class chain above ``cls``.

        Memoized — a diamond hierarchy revisits shared bases once, not
        2^depth times — and iterative, with a cycle guard: malformed
        base-class data (``A -> B -> A``) raises ``ValueError`` naming
        the cycle instead of blowing the recursion limit.
        """
        memo = self._depths
        if cls.ref in memo:
            return memo[cls.ref]
        visiting: set = set()
        # (class, its bases, next base index) — post-order evaluation
        stack = [(cls, [b for _, _, b in cls.baseClasses()], 0)]
        visiting.add(cls.ref)
        while stack:
            c, bases, i = stack.pop()
            while i < len(bases):
                b = bases[i]
                if b.ref in memo:
                    i += 1
                    continue
                if b.ref in visiting:
                    cycle = " -> ".join(
                        [x.fullName() for x, _, _ in stack]
                        + [c.fullName(), b.fullName()]
                    )
                    raise ValueError(f"class hierarchy cycle: {cycle}")
                stack.append((c, bases, i))
                stack.append((b, [bb for _, _, bb in b.baseClasses()], 0))
                visiting.add(b.ref)
                break
            else:
                memo[c.ref] = (
                    1 + max(memo[b.ref] for b in bases) if bases else 0
                )
                visiting.discard(c.ref)
        return memo[cls.ref]

    def render(self) -> str:
        lines: list[str] = []
        for root in self.roots:
            for c, depth in self.walk(root):
                indent = "    " * depth
                arrow = "`--> " if depth else ""
                lines.append(f"{indent}{arrow}{c.fullName()}")
        return "\n".join(lines)
