"""DUCTAPE item classes — the hierarchy of paper Figure 4.

Wrappers over :class:`repro.pdbfmt.items.RawItem` records.  Cross-item
references resolve to object pointers when the owning :class:`PDB`
finishes loading (``_link``), after which navigation is attribute access.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.pdbfmt.items import Attribute, ItemRef, RawItem

if TYPE_CHECKING:  # pragma: no cover
    from repro.ductape.pdb import PDB

#: routine flag values used by tools walking the call graph (Figure 5)
INACTIVE = 0
ACTIVE = 1


class PdbLoc:
    """A resolved source location: file object + line + column."""

    def __init__(self, file: Optional["PdbFile"], line: int, column: int):
        self._file = file
        self._line = line
        self._column = column

    def file(self) -> Optional["PdbFile"]:
        return self._file

    def line(self) -> int:
        return self._line

    def col(self) -> int:
        return self._column

    @property
    def known(self) -> bool:
        return self._file is not None

    def __str__(self) -> str:
        if self._file is None:
            return "<unknown>"
        return f"{self._file.name()}:{self._line}:{self._column}"


class PdbSimpleItem:
    """Root of the DUCTAPE hierarchy: a name and a PDB id."""

    def __init__(self, pdb: "PDB", raw: RawItem):
        self._pdb = pdb
        self._raw = raw
        self._flag = INACTIVE

    def name(self) -> str:
        return self._raw.name

    def id(self) -> int:
        return self._raw.id

    def prefix(self) -> str:
        return self._raw.prefix

    @property
    def ref(self) -> ItemRef:
        return self._raw.ref

    @property
    def raw(self) -> RawItem:
        return self._raw

    def flag(self, value: Optional[int] = None) -> int:
        """Get or set the traversal flag (pdbtree's cycle marker)."""
        if value is not None:
            self._flag = value
        return self._flag

    def fullName(self) -> str:
        return self.name()

    # -- raw-attribute helpers shared by subclasses -------------------------

    def _resolve(self, ref: Optional[ItemRef]):
        if ref is None:
            return None
        return self._pdb.item(ref)

    def _ref_attr(self, key: str):
        return self._resolve(self._raw.get_ref(key))

    def _loc_attr(self, key: str) -> PdbLoc:
        a = self._raw.get(key)
        if a is None or len(a.words) < 3 or a.words[0] == "NULL":
            return PdbLoc(None, 0, 0)
        f = self._resolve(ItemRef.parse(a.words[0]))
        return PdbLoc(f, int(a.words[1]), int(a.words[2]))

    def _loc_from_words(self, words: list[str]) -> PdbLoc:
        if len(words) < 3 or words[0] == "NULL":
            return PdbLoc(None, 0, 0)
        return PdbLoc(self._resolve(ItemRef.parse(words[0])), int(words[1]), int(words[2]))

    def _word_attr(self, key: str, default: str = "") -> str:
        w = self._raw.first_word(key)
        return w if w is not None else default

    def _link(self) -> None:
        """Resolve references after the whole PDB is indexed."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self._raw.prefix}#{self._raw.id} {self.fullName()}>"


class PdbFile(PdbSimpleItem):
    """A source file (``so``), with its direct inclusions."""

    def includes(self) -> list["PdbFile"]:
        out = []
        for a in self._raw.get_all("sinc"):
            f = self._resolve(ItemRef.parse(a.words[0]))
            if f is not None:
                out.append(f)
        return out

    def isSystem(self) -> bool:
        return self._word_attr("ssys") == "yes"


class PdbItem(PdbSimpleItem):
    """Items with a source location, parent scope, and access mode."""

    _loc_key = "loc"
    _class_key = ""
    _nspace_key = ""
    _acs_key = ""

    def location(self) -> PdbLoc:
        return self._loc_attr(self._loc_key)

    def parentClass(self) -> Optional["PdbClass"]:
        # cached: raw parent refs never change during a wrapper's life
        # (merge clones items and rebuilds every wrapper via _reindex)
        if "_parent_class" not in self.__dict__:
            self.__dict__["_parent_class"] = (
                self._ref_attr(self._class_key) if self._class_key else None
            )
        return self.__dict__["_parent_class"]

    def parentNamespace(self) -> Optional["PdbNamespace"]:
        if "_parent_nspace" not in self.__dict__:
            self.__dict__["_parent_nspace"] = (
                self._ref_attr(self._nspace_key) if self._nspace_key else None
            )
        return self.__dict__["_parent_nspace"]

    def parent(self) -> Optional[PdbSimpleItem]:
        return self.parentClass() or self.parentNamespace()

    def access(self) -> str:
        return self._word_attr(self._acs_key, "NA") if self._acs_key else "NA"

    def fullName(self) -> str:
        cached = self.__dict__.get("_full_name")
        if cached is not None:
            return cached
        parts = [self.name()]
        p = self.parent()
        guard = 0
        while p is not None and guard < 64:
            parts.append(p.name())
            p = p.parent() if isinstance(p, PdbItem) else None
            guard += 1
        full = "::".join(reversed(parts))
        self.__dict__["_full_name"] = full
        return full


class PdbMacro(PdbItem):
    """A preprocessor macro (``ma``): kind and text (Table 1)."""

    _loc_key = "maloc"

    def kind(self) -> str:
        return self._word_attr("makind", "def")

    def text(self) -> str:
        a = self._raw.get("matext")
        return a.text or "" if a is not None else ""


class PdbFerr(PdbItem):
    """A frontend error record (``ferr``): one recovered diagnostic of a
    translation unit that failed (partially or wholly) to compile.

    ``name()`` is the translation unit the record belongs to; ``file()``
    is the source file the diagnostic points into (usually the same, but
    a broken header blames the header)."""

    _loc_key = "floc"

    def file(self) -> Optional["PdbFile"]:
        return self._ref_attr("ffile")

    def severity(self) -> str:
        return self._word_attr("fsev", "error")

    def kind(self) -> str:
        return self._word_attr("fkind", "parse")

    def message(self) -> str:
        a = self._raw.get("fmsg")
        return a.text or "" if a is not None else ""

    def render(self) -> str:
        """Format like a compiler diagnostic: ``file:line:col: error: msg``."""
        loc = self.location()
        prefix = f"{loc}: " if loc.known else ""
        return f"{prefix}{self.severity()}: {self.message()}"


class PdbType(PdbItem):
    """A type (``ty``): kind plus kind-specific attributes."""

    _loc_key = "yloc"
    _class_key = "yclass"
    _nspace_key = "ynspace"
    _acs_key = "yacs"

    def kind(self) -> str:
        return self._word_attr("ykind", "unknown")

    def integerKind(self) -> str:
        return self._word_attr("yikind")

    def referencedType(self) -> Optional[PdbSimpleItem]:
        for key in ("yref", "ytref", "yptr", "yelem"):
            t = self._ref_attr(key)
            if t is not None:
                return t
        return None

    def returnType(self) -> Optional[PdbSimpleItem]:
        return self._ref_attr("yrett")

    def argumentTypes(self) -> list[PdbSimpleItem]:
        out = []
        for a in self._raw.get_all("yargt"):
            t = self._resolve(ItemRef.parse(a.words[0]))
            if t is not None:
                out.append(t)
        return out

    def hasEllipsis(self) -> bool:
        return self._word_attr("yellip") == "yes"

    def isConst(self) -> bool:
        a = self._raw.get("yqual")
        return a is not None and "const" in a.words

    def exceptionTypes(self) -> list[PdbSimpleItem]:
        out = []
        for a in self._raw.get_all("yexcep"):
            t = self._resolve(ItemRef.parse(a.words[0]))
            if t is not None:
                out.append(t)
        return out

    def enumerators(self) -> list[tuple[str, int]]:
        out = []
        for a in self._raw.get_all("yename"):
            if len(a.words) >= 2:
                out.append((a.words[0], int(a.words[1])))
        return out


class PdbFatItem(PdbItem):
    """Items with a header and a body (``*pos`` extents)."""

    _pos_key = "pos"

    def headerBegin(self) -> PdbLoc:
        return self._pos_loc(0)

    def headerEnd(self) -> PdbLoc:
        return self._pos_loc(1)

    def bodyBegin(self) -> PdbLoc:
        return self._pos_loc(2)

    def bodyEnd(self) -> PdbLoc:
        return self._pos_loc(3)

    def _pos_loc(self, index: int) -> PdbLoc:
        resolved = self.__dict__.get("_pos_locs")
        if resolved is None:
            locs = self._raw.get_positions(self._pos_key) or []
            resolved = [
                PdbLoc(
                    self._resolve(loc.file) if loc.file is not None else None,
                    loc.line,
                    loc.column,
                )
                for loc in locs
            ]
            self.__dict__["_pos_locs"] = resolved
        if index >= len(resolved):
            return PdbLoc(None, 0, 0)
        return resolved[index]


class PdbTemplate(PdbFatItem):
    """A template (``te``): kind constants per Figure 6's ``templ_t``."""

    _loc_key = "tloc"
    _class_key = "tclass"
    _nspace_key = "tnspace"
    _acs_key = "tacs"
    _pos_key = "tpos"

    TE_CLASS = "class"
    TE_FUNC = "func"
    TE_MEMFUNC = "memfunc"
    TE_STATMEM = "statmem"
    TE_MEMCLASS = "memclass"

    def kind(self) -> str:
        return self._word_attr("tkind", self.TE_CLASS)

    def text(self) -> str:
        a = self._raw.get("ttext")
        return a.text or "" if a is not None else ""

    def parentClass(self):
        # tclass may reference a te (owner class template) or a cl
        return self._ref_attr("tclass")


class PdbNamespace(PdbFatItem):
    """A namespace (``na``): members and aliases (Table 1)."""

    _loc_key = "nloc"
    _nspace_key = "nnspace"
    _pos_key = "npos"

    def members(self) -> list[PdbSimpleItem]:
        out = []
        for a in self._raw.get_all("nmem"):
            m = self._resolve(ItemRef.parse(a.words[0]))
            if m is not None:
                out.append(m)
        return out

    def aliases(self) -> list[tuple[str, "PdbNamespace"]]:
        out = []
        for a in self._raw.get_all("nalias"):
            target = self._resolve(ItemRef.parse(a.words[0]))
            alias = a.words[1] if len(a.words) > 1 else ""
            if target is not None:
                out.append((alias, target))
        return out


class PdbTemplateItem(PdbFatItem):
    """Entities that can be instantiated from templates (Figure 4)."""

    _templ_key = "templ"
    _specl_key = "specl"

    def template(self) -> Optional[PdbTemplate]:
        """The template this entity was instantiated from, if the IL
        Analyzer could determine it (it cannot for specializations)."""
        return self._ref_attr(self._templ_key)

    def isTemplateInstantiation(self) -> bool:
        return self.template() is not None

    def isSpecialized(self) -> bool:
        return self._word_attr(self._specl_key) == "yes"


class PdbCall:
    """One ``rcall`` record: callee + virtual flag + call location."""

    def __init__(self, owner: "PdbRoutine", attr: Attribute):
        self._owner = owner
        self._attr = attr

    def call(self) -> Optional["PdbRoutine"]:
        return self._owner._resolve(ItemRef.parse(self._attr.words[0]))

    def isVirtual(self) -> bool:
        return len(self._attr.words) > 1 and self._attr.words[1] == "virt"

    def location(self) -> PdbLoc:
        return self._owner._loc_from_words(self._attr.words[2:5])


class PdbRoutine(PdbTemplateItem):
    """A routine (``ro``) — Table 1's full attribute set."""

    _loc_key = "rloc"
    _class_key = "rclass"
    _nspace_key = "rnspace"
    _acs_key = "racs"
    _pos_key = "rpos"
    _templ_key = "rtempl"
    _specl_key = "rspecl"

    #: routine kinds (rkind)
    RO_FUNC = "func"
    RO_MEMFUNC = "memfunc"
    RO_CTOR = "ctor"
    RO_DTOR = "dtor"
    RO_OP = "op"
    RO_CONV = "conv"

    def signature(self) -> Optional[PdbType]:
        return self._ref_attr("rsig")

    def kind(self) -> str:
        return self._word_attr("rkind", self.RO_FUNC)

    def linkage(self) -> str:
        return self._word_attr("rlink", "C++")

    def storageClass(self) -> str:
        return self._word_attr("rstore", "NA")

    def virtuality(self) -> str:
        return self._word_attr("rvirt", "no")

    def isVirtual(self) -> bool:
        return self.virtuality() in ("virt", "pure")

    def isPureVirtual(self) -> bool:
        return self.virtuality() == "pure"

    def isInline(self) -> bool:
        return self._word_attr("rinline") == "yes"

    def isStatic(self) -> bool:
        return self._word_attr("rstatic") == "yes"

    def parameters(self) -> list[tuple[Optional[PdbSimpleItem], str, bool]]:
        """(type item, name, has_default) per declared parameter."""
        out = []
        for a in self._raw.get_all("rarg"):
            if not a.words:
                continue
            t = self._resolve(ItemRef.parse(a.words[0])) if a.words[0] != "NULL" else None
            name = a.words[1] if len(a.words) > 1 else "_"
            has_default = len(a.words) > 2 and a.words[2] == "D"
            out.append((t, name, has_default))
        return out

    def requiredParameterCount(self) -> int:
        return sum(1 for _, _, d in self.parameters() if not d)

    def callees(self) -> list[PdbCall]:
        """The functions this routine calls (Figure 5's ``callvec``)."""
        return [PdbCall(self, a) for a in self._raw.get_all("rcall")]

    def callers(self) -> list["PdbRoutine"]:
        return self._pdb.callers_of(self)


class PdbMember:
    """One data member of a class (a ``cmem`` attribute group)."""

    def __init__(self, owner: "PdbClass", name: str, attrs: dict[str, Attribute]):
        self._owner = owner
        self._name = name
        self._attrs = attrs

    def name(self) -> str:
        return self._name

    def location(self) -> PdbLoc:
        a = self._attrs.get("cmloc")
        return self._owner._loc_from_words(a.words if a else [])

    def access(self) -> str:
        a = self._attrs.get("cmacs")
        return a.words[0] if a and a.words else "NA"

    def kind(self) -> str:
        a = self._attrs.get("cmkind")
        return a.words[0] if a and a.words else "var"

    def type(self) -> Optional[PdbSimpleItem]:
        a = self._attrs.get("cmtype")
        if a is None or not a.words or a.words[0] == "NULL":
            return None
        return self._owner._resolve(ItemRef.parse(a.words[0]))


class PdbClass(PdbTemplateItem):
    """A class (``cl``) — Table 1's full attribute set."""

    _loc_key = "cloc"
    _class_key = "cclass"
    _nspace_key = "cnspace"
    _acs_key = "cacs"
    _pos_key = "cpos"
    _templ_key = "ctempl"
    _specl_key = "cspecl"

    def kind(self) -> str:
        return self._word_attr("ckind", "class")

    def baseClasses(self) -> list[tuple[str, bool, "PdbClass"]]:
        """Direct bases: (access, is_virtual, class)."""
        out = []
        for a in self._raw.get_all("cbase"):
            if len(a.words) < 3:
                continue
            base = self._resolve(ItemRef.parse(a.words[2]))
            if base is not None:
                out.append((a.words[0], a.words[1] == "virt", base))
        return out

    def derivedClasses(self) -> list["PdbClass"]:
        return self._pdb.derived_of(self)

    def friendClasses(self) -> list["PdbClass"]:
        out = []
        for a in self._raw.get_all("cfriend"):
            c = self._resolve(ItemRef.parse(a.words[0]))
            if c is not None:
                out.append(c)
        return out

    def friendRoutines(self) -> list[PdbRoutine]:
        out = []
        for a in self._raw.get_all("cfrfunc"):
            r = self._resolve(ItemRef.parse(a.words[0]))
            if r is not None:
                out.append(r)
        return out

    def memberFunctions(self) -> list[PdbRoutine]:
        out = []
        for a in self._raw.get_all("cfunc"):
            r = self._resolve(ItemRef.parse(a.words[0]))
            if r is not None:
                out.append(r)
        return out

    def dataMembers(self) -> list[PdbMember]:
        """The ``cmem`` groups: each member with its cm* detail lines."""
        out: list[PdbMember] = []
        current_name: Optional[str] = None
        current: dict[str, Attribute] = {}
        for a in self._raw.attributes:
            if a.key == "cmem":
                if current_name is not None:
                    out.append(PdbMember(self, current_name, current))
                current_name = (a.text or "").strip()
                current = {}
            elif a.key in ("cmloc", "cmacs", "cmkind", "cmtype") and current_name is not None:
                current[a.key] = a
        if current_name is not None:
            out.append(PdbMember(self, current_name, current))
        return out


#: prefix -> wrapper class
ITEM_CLASSES: dict[str, type] = {
    "so": PdbFile,
    "ro": PdbRoutine,
    "cl": PdbClass,
    "ty": PdbType,
    "te": PdbTemplate,
    "na": PdbNamespace,
    "ma": PdbMacro,
    "ferr": PdbFerr,
}
