"""DUCTAPE — "C++ program Database Utilities and Conversion Tools
APplication Environment" (paper Section 3.3), in Python.

Provides an object-oriented API to PDB files produced by the IL
Analyzer.  Each PDB item type is represented by a class with a
corresponding name; common attributes are factored into the generic base
classes of paper Figure 4:

* :class:`PdbSimpleItem` — name and PDB id,
* :class:`PdbFile` — source files, with inclusion edges,
* :class:`PdbItem` — items with a source location, optional parent
  class/namespace, and access mode,
* :class:`PdbMacro`, :class:`PdbType`,
* :class:`PdbFatItem` — items with header and body extents,
* :class:`PdbTemplate`, :class:`PdbNamespace`,
* :class:`PdbTemplateItem` — entities instantiable from templates,
* :class:`PdbClass`, :class:`PdbRoutine`,
* :class:`PdbFerr` — frontend error records from fault-tolerant builds.

The :class:`PDB` class represents an entire PDB file: reading, writing,
merging, item vectors, the source-file inclusion tree, the static call
tree, and the class hierarchy.  "Attributes of items representing
references to other entities are implemented by pointers to the
corresponding objects, allowing easy navigation" — here, plain Python
references resolved once at load time.
"""

from repro.ductape.items import (
    ACTIVE,
    INACTIVE,
    PdbCall,
    PdbClass,
    PdbFerr,
    PdbFile,
    PdbItem,
    PdbLoc,
    PdbMacro,
    PdbMember,
    PdbNamespace,
    PdbRoutine,
    PdbSimpleItem,
    PdbTemplate,
    PdbTemplateItem,
    PdbType,
)
from repro.ductape.pdb import PDB, MergeStats

__all__ = [
    "ACTIVE",
    "INACTIVE",
    "MergeStats",
    "PDB",
    "PdbCall",
    "PdbClass",
    "PdbFerr",
    "PdbFile",
    "PdbItem",
    "PdbLoc",
    "PdbMacro",
    "PdbMember",
    "PdbNamespace",
    "PdbRoutine",
    "PdbSimpleItem",
    "PdbTemplate",
    "PdbTemplateItem",
    "PdbType",
]
