"""The PDB class: an entire program database (paper Section 3.3).

"It provides methods to read, write, and merge PDB files, and to get the
source file inclusion tree, the static call tree, and the class
hierarchy.  It provides a list of all items contained in the PDB file as
well as lists of all defined types, files, classes, routines, templates,
macros, and namespaces."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ductape.items import (
    ITEM_CLASSES,
    PdbClass,
    PdbFerr,
    PdbFile,
    PdbMacro,
    PdbNamespace,
    PdbRoutine,
    PdbSimpleItem,
    PdbTemplate,
    PdbType,
)
from repro.pdbfmt.items import ItemRef, PdbDocument, RawItem
from repro.pdbfmt.reader import parse_pdb
from repro.pdbfmt.writer import write_pdb



@dataclass
class MergeStats:
    """Outcome of one :meth:`PDB.merge` call."""

    items_in: int = 0
    items_added: int = 0
    duplicates_eliminated: int = 0
    duplicate_instantiations: int = 0
    #: incoming *definition* items whose entity already had a different
    #: definition here — One-Definition-Rule conflicts (see ``odr_log``)
    odr_conflicts: int = 0


class PDB:
    """An entire PDB file, with navigation and merge support."""

    def __init__(self, doc: Optional[PdbDocument] = None):
        self.doc = doc or PdbDocument()
        #: wrappers materialised on first access, keyed by ItemRef —
        #: loading a database costs only the raw id index; tools that
        #: touch one routine never pay for the other thousand wrappers
        self._wrappers: dict[ItemRef, PdbSimpleItem] = {}
        self._raw: dict[str, dict[int, RawItem]] = {}
        self._reindex()

    # -- construction -------------------------------------------------------

    @classmethod
    def from_text(cls, text: str) -> "PDB":
        return cls(parse_pdb(text))

    @classmethod
    def read(cls, path: str) -> "PDB":
        with open(path) as f:
            return cls.from_text(f.read())

    @classmethod
    def from_il(cls, tree) -> "PDB":
        """Convenience: run the IL Analyzer and wrap the result."""
        from repro.analyzer import analyze

        return cls(analyze(tree))

    def _reindex(self) -> None:
        """Rebuild the raw id index and drop materialised wrappers
        (wrappers cache resolved cross-references, which merge can
        invalidate).  Deliberately cheap: no ItemRef or wrapper is
        created here — both happen lazily on first access."""
        self._wrappers.clear()
        raw_index: dict[str, dict[int, RawItem]] = {}
        for raw in self.doc.items:
            sub = raw_index.get(raw.prefix)
            if sub is None:
                sub = raw_index[raw.prefix] = {}
            sub[raw.id] = raw
        self._raw = raw_index

    def materialize(self) -> int:
        """Force every wrapper into existence (the eager-load behaviour
        lazy loading replaced) and return the item count.  Tools that
        will touch the whole database anyway can call this up front."""
        return len(self.items())

    # -- output ------------------------------------------------------------

    def to_text(self) -> str:
        return write_pdb(self.doc)

    def write(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_text())

    # -- lookup -------------------------------------------------------------

    def item(self, ref: ItemRef) -> Optional[PdbSimpleItem]:
        if ref is None:
            return None
        w = self._wrappers.get(ref)
        if w is None:
            sub = self._raw.get(ref.prefix)
            raw = sub.get(ref.id) if sub is not None else None
            if raw is None:
                return None
            w = ITEM_CLASSES.get(ref.prefix, PdbSimpleItem)(self, raw)
            self._wrappers[ref] = w
        return w

    def items(self) -> list[PdbSimpleItem]:
        item = self.item
        return [item(raw.ref) for raw in self.doc.items]

    def _vec(self, prefix: str) -> list:
        item = self.item
        return [item(raw.ref) for raw in self.doc.items if raw.prefix == prefix]

    def getFileVec(self) -> list[PdbFile]:
        return self._vec("so")

    def getRoutineVec(self) -> list[PdbRoutine]:
        return self._vec("ro")

    def getClassVec(self) -> list[PdbClass]:
        return self._vec("cl")

    def getTypeVec(self) -> list[PdbType]:
        return self._vec("ty")

    def getTemplateVec(self) -> list[PdbTemplate]:
        return self._vec("te")

    def getNamespaceVec(self) -> list[PdbNamespace]:
        return self._vec("na")

    def getMacroVec(self) -> list[PdbMacro]:
        return self._vec("ma")

    def getErrorVec(self) -> list[PdbFerr]:
        """All frontend error records (``ferr``), in file order."""
        return self._vec("ferr")

    def errors_of(self, f: PdbFile) -> list[PdbFerr]:
        """The ``ferr`` records whose diagnostics point into ``f``."""
        return [e for e in self.getErrorVec() if e.file() is f]

    def findRoutine(self, full_name: str) -> Optional[PdbRoutine]:
        for r in self.getRoutineVec():
            if r.fullName() == full_name or r.name() == full_name:
                return r
        return None

    def findClass(self, name: str) -> Optional[PdbClass]:
        for c in self.getClassVec():
            if c.fullName() == name or c.name() == name:
                return c
        return None

    # -- derived structure queries ----------------------------------------------

    def callers_of(self, routine: PdbRoutine) -> list[PdbRoutine]:
        out = []
        for r in self.getRoutineVec():
            if any(c.call() is routine for c in r.callees()):
                out.append(r)
        return out

    def derived_of(self, cls: PdbClass) -> list[PdbClass]:
        out = []
        for c in self.getClassVec():
            if any(base is cls for _, _, base in c.baseClasses()):
                out.append(c)
        return out

    def getInclusionTree(self):
        from repro.ductape.inclusion import InclusionTree

        return InclusionTree(self)

    def getCallTree(self):
        from repro.ductape.callgraph import CallTree

        return CallTree(self)

    def getClassHierarchy(self):
        from repro.ductape.classhier import ClassHierarchy

        return ClassHierarchy(self)

    # -- merge ------------------------------------------------------------------

    def merge(self, other: "PDB", odr_log: Optional[list] = None) -> MergeStats:
        """Merge ``other`` into this PDB, eliminating duplicate items —
        in particular duplicate template instantiations from separate
        compilations (paper Table 2, pdbmerge).

        One-Definition-Rule bookkeeping rides along: an incoming
        *definition* item (a routine with a body, a located class) whose
        entity already has a *different* definition here bumps
        ``odr_conflicts``; pass ``odr_log`` (a list) to also collect one
        detail dict per conflict (``pdbmerge --check`` prints these).
        """
        stats = MergeStats(items_in=len(other.doc.items))
        self_index = self.doc.index()
        other_index = other.doc.index()
        self_keys: dict[tuple, RawItem] = {}
        self_odr: dict[tuple, RawItem] = {}
        for raw in self.doc.items:
            self_keys[_item_key(self_index, raw)] = raw
            okey = _odr_key(self_index, raw)
            if okey is not None:
                self_odr.setdefault(okey, raw)
        remap: dict[str, str] = {}
        counters: dict[str, int] = {}
        for raw in self.doc.items:
            counters[raw.prefix] = max(counters.get(raw.prefix, 0), raw.id)
        pending: list[RawItem] = []
        for raw in other.doc.items:
            key = _item_key(other_index, raw)
            existing = self_keys.get(key)
            if existing is not None:
                remap[str(raw.ref)] = str(existing.ref)
                stats.duplicates_eliminated += 1
                if raw.prefix in ("cl", "ro") and raw.get("ctempl" if raw.prefix == "cl" else "rtempl"):
                    stats.duplicate_instantiations += 1
                continue
            okey = _odr_key(other_index, raw)
            if okey is not None:
                prior = self_odr.get(okey)
                if prior is not None:
                    stats.odr_conflicts += 1
                    if odr_log is not None:
                        odr_log.append(
                            {
                                "kind": "routine" if raw.prefix == "ro" else "class",
                                "name": okey[1],
                                "existing": _loc_str(self_index, prior),
                                "incoming": _loc_str(other_index, raw),
                            }
                        )
                else:
                    self_odr[okey] = raw
            counters[raw.prefix] = counters.get(raw.prefix, 0) + 1
            clone = RawItem(prefix=raw.prefix, id=counters[raw.prefix], name=raw.name)
            for a in raw.attributes:
                clone.attributes.append(a.clone())
            remap[str(raw.ref)] = str(clone.ref)
            pending.append(clone)
            self_keys[key] = clone
            stats.items_added += 1
        # remap keys are exactly the ``prefix#id`` spellings of incoming
        # refs, so a plain dict probe replaces the old per-word
        # ref-shaped regex test: any word that could hit a key *is* a
        # ref spelling, and every other word misses and passes through
        remap_get = remap.get
        for clone in pending:
            for a in clone.attributes:
                a.words = [remap_get(w, w) for w in a.words]
            self.doc.items.append(clone)
        self._reindex()
        return stats


def _item_key(index: dict, raw: RawItem) -> tuple:
    """Identity key for merge deduplication.

    Two items from separate compilations are "the same entity" when their
    kind, name, and defining source position coincide — template
    instantiations share the template's definition position, so repeated
    ``Stack<int>`` subtrees collapse (the paper's headline merge feature).
    """
    loc_key = _loc_key(index, raw)
    if raw.prefix == "so":
        return ("so", raw.name)
    if raw.prefix == "ty":
        return ("ty", raw.name, _parent_name(index, raw, "yclass", "ynspace"))
    if raw.prefix == "ma":
        return ("ma", raw.name, loc_key)
    if raw.prefix == "ferr":
        # one record per distinct (file, position, message): re-merging
        # the same failed TU does not duplicate its error list
        a = raw.get("fmsg")
        return ("ferr", raw.name, loc_key, a.text if a is not None else "")
    if raw.prefix == "na":
        return ("na", raw.name, _parent_name(index, raw, "", "nnspace"))
    if raw.prefix == "te":
        return ("te", raw.name, loc_key, raw.first_word("tkind"))
    if raw.prefix == "cl":
        return ("cl", raw.name, _parent_name(index, raw, "cclass", "cnspace"), loc_key)
    if raw.prefix == "ro":
        sig = raw.get_ref("rsig")
        sig_name = ""
        if sig is not None:
            sig_item = index.get(sig)
            sig_name = sig_item.name if sig_item is not None else ""
        return (
            "ro",
            raw.name,
            _parent_name(index, raw, "rclass", "rnspace"),
            sig_name,
            loc_key,
        )
    return (raw.prefix, raw.name, loc_key)


def _odr_key(index: dict, raw: RawItem) -> Optional[tuple]:
    """ODR identity: the *entity* a definition item defines, sans
    location.  Two items sharing an ODR key but not an item key are two
    different definitions of one entity — an ODR violation.

    Only definitions participate: routines with a known body position
    (declaration-only items are not definitions) and located classes.
    Internal-linkage (static) routines are exempt — one per TU is legal.
    """
    if raw.prefix == "ro":
        if raw.first_word("rstatic") == "yes" or raw.first_word("rstore") == "static":
            return None
        positions = raw.get_positions("rpos")
        if positions is None or len(positions) < 3 or positions[2].file is None:
            return None  # no body: a declaration, not a definition
        sig = raw.get_ref("rsig")
        sig_name = ""
        if sig is not None:
            sig_item = index.get(sig)
            sig_name = sig_item.name if sig_item is not None else ""
        return ("ro", raw.name, _parent_name(index, raw, "rclass", "rnspace"), sig_name)
    if raw.prefix == "cl":
        loc = raw.get_location("cloc")
        if loc is None or loc.file is None:
            return None
        return ("cl", raw.name, _parent_name(index, raw, "cclass", "cnspace"))
    return None


def _loc_str(index: dict, raw: RawItem) -> str:
    """``file:line`` of an item's defining location, for ODR logs."""
    for key in ("rloc", "cloc"):
        loc = raw.get_location(key)
        if loc is not None and loc.file is not None:
            f = index.get(loc.file)
            return f"{f.name if f is not None else '?'}:{loc.line}"
    return "?"


def _loc_key(index: dict, raw: RawItem) -> tuple:
    for key in ("rloc", "cloc", "tloc", "nloc", "maloc", "yloc", "floc"):
        loc = raw.get_location(key)
        if loc is not None and loc.file is not None:
            f = index.get(loc.file)
            return (f.name if f is not None else "?", loc.line, loc.column)
    return ()


def _parent_name(index: dict, raw: RawItem, class_key: str, ns_key: str) -> str:
    for key in (class_key, ns_key):
        if not key:
            continue
        ref = raw.get_ref(key)
        if ref is not None:
            parent = index.get(ref)
            if parent is not None:
                return f"{ref.prefix}:{parent.name}"
    return ""
