"""Java front-end driver: sources -> the common ILTree."""

from __future__ import annotations

from typing import Optional

from repro.cpp.diagnostics import DiagnosticSink
from repro.cpp.il import ILTree
from repro.cpp.source import SourceManager
from repro.java.parser import JavaParser


class JavaFrontend:
    """Compiles a set of Java sources into an ILTree the (unchanged) IL
    Analyzer, DUCTAPE, and tools consume."""

    def __init__(self, manager: Optional[SourceManager] = None):
        self.manager = manager or SourceManager()
        self.sink = DiagnosticSink(fatal_errors=False)

    def register_files(self, files: dict[str, str]) -> None:
        self.manager.register_many(files)

    def compile(self, file_names: list[str]) -> ILTree:
        """Compile the named files as one compilation set (two passes,
        so cross-file references resolve in any order)."""
        tree = ILTree()
        parser = JavaParser(tree, self.sink)
        files = [self.manager.load(n) for n in file_names]
        parser.parse_files(files)
        tree.files = files
        if files:
            tree.main_file = files[-1]
        return tree
