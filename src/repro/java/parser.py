"""Java 1.x subset parser -> the common IL.

Token-driven recursive descent over the C++ lexer's output (Java is
lexically a C-family language and has no preprocessor).  Two passes per
compilation set: declarations first (so cross-class references resolve
regardless of file order — Java has no forward-declaration requirement),
then method bodies for call extraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cpp.cpptypes import Type, TypeTable
from repro.cpp.diagnostics import DiagnosticSink
from repro.cpp.il import (
    Access,
    Class,
    ClassKind,
    Field,
    ILTree,
    Namespace,
    Parameter,
    Routine,
    RoutineKind,
    SourceRange,
    Virtuality,
)
from repro.cpp.lexer import tokenize
from repro.cpp.source import SourceFile, SourceLocation
from repro.cpp.tokens import Token, TokenKind

#: Java keywords we dispatch on (subset)
_MODIFIERS = frozenset(
    "public protected private static final abstract native synchronized transient volatile strictfp".split()
)
_PRIMITIVES = {
    "void": "void",
    "boolean": "bool",
    "byte": "signed char",
    "char": "wchar_t",
    "short": "short",
    "int": "int",
    "long": "long",
    "float": "float",
    "double": "double",
}
_STMT_KEYWORDS = frozenset(
    "if else while do for switch case default break continue return try catch finally throw synchronized".split()
)


class JavaParseError(Exception):
    """Unrecoverable Java parse error."""
    def __init__(self, message: str, location: Optional[SourceLocation] = None):
        self.location = location
        where = f"{location}: " if location else ""
        super().__init__(f"{where}{message}")


@dataclass
class _PendingBody:
    routine: Routine
    cls: Class
    tokens: list[Token]
    start: int  # index of "{"
    end: int  # index just past "}"


class JavaParser:
    """Parses a set of Java source files into one ILTree."""

    def __init__(self, tree: ILTree, sink: Optional[DiagnosticSink] = None):
        self.tree = tree
        self.types: TypeTable = tree.types
        self.sink = sink or DiagnosticSink(fatal_errors=False)
        #: simple name -> Class (Java's flat import model, simplified)
        self.classes_by_name: dict[str, Class] = {}
        self._pending: list[_PendingBody] = []
        self._pending_bases: list[tuple[Class, str, bool]] = []

    # -- driver --------------------------------------------------------------

    def parse_files(self, files: list[SourceFile]) -> None:
        for f in files:
            self._parse_declarations(f)
        self._resolve_bases()
        for pb in self._pending:
            self._parse_body(pb)
        self._pending.clear()

    # -- declaration pass ---------------------------------------------------------

    def _parse_declarations(self, file: SourceFile) -> None:
        toks = tokenize(file)
        pos = 0

        def cur() -> Token:
            return toks[min(pos, len(toks) - 1)]

        # package
        ns = self.tree.global_namespace
        if cur().is_ident("package"):
            pos += 1
            parts = []
            while toks[pos].kind is TokenKind.IDENT:
                parts.append(toks[pos])
                pos += 1
                if toks[pos].is_punct("."):
                    pos += 1
                else:
                    break
            ns = self._namespace_chain(parts)
            if toks[pos].is_punct(";"):
                pos += 1
        # imports: recorded as inclusion-ish hints only
        while cur().is_ident("import"):
            while not toks[pos].is_punct(";") and toks[pos].kind is not TokenKind.EOF:
                pos += 1
            pos += 1
        # type declarations
        while toks[pos].kind is not TokenKind.EOF:
            pos = self._parse_type_decl(toks, pos, ns, file)

    def _namespace_chain(self, parts: list[Token]) -> Namespace:
        ns = self.tree.global_namespace
        for tok in parts:
            nxt = next((n for n in ns.namespaces if n.name == tok.text), None)
            if nxt is None:
                nxt = Namespace(tok.text, tok.location, ns)
                ns.namespaces.append(nxt)
                self.tree.register_namespace(nxt)
            ns = nxt
        return ns

    def _parse_type_decl(
        self, toks: list[Token], pos: int, ns: Namespace, file: SourceFile
    ) -> int:
        mods, pos = self._modifiers(toks, pos)
        t = toks[pos]
        if t.kind is TokenKind.EOF:
            return pos
        if not (t.is_ident("class") or t.is_ident("interface")):
            return pos + 1  # tolerated noise (semicolons, annotations…)
        is_interface = t.text == "interface"
        key_tok = toks[pos]
        pos += 1
        name_tok = toks[pos]
        pos += 1
        cls = Class(name_tok.text, name_tok.location, ns, ClassKind.CLASS)
        cls.defined = True
        cls.access = _access_of(mods)
        cls.flags["java"] = True
        cls.flags["java_interface"] = is_interface
        if "abstract" in mods or is_interface:
            cls.is_abstract = True
        cls.position.header = SourceRange(key_tok.location, name_tok.location)
        ns.classes.append(cls)
        self.tree.register_class(cls)
        self.classes_by_name[cls.name] = cls
        # extends / implements: bases resolve after all decls are seen
        while toks[pos].is_ident("extends") or toks[pos].is_ident("implements"):
            is_iface_edge = toks[pos].text == "implements"
            pos += 1
            while toks[pos].kind is TokenKind.IDENT:
                base_name = toks[pos].text
                pos += 1
                while toks[pos].is_punct("."):
                    pos += 2  # qualified name: keep last part
                    base_name = toks[pos - 1].text
                self._pending_bases.append((cls, base_name, is_iface_edge))
                if toks[pos].is_punct(","):
                    pos += 1
                else:
                    break
        if not toks[pos].is_punct("{"):
            raise JavaParseError(
                f"expected class body, found {toks[pos].text!r}", toks[pos].location
            )
        body_open = toks[pos]
        pos += 1
        pos = self._parse_members(toks, pos, cls, is_interface)
        cls.position.body = SourceRange(body_open.location, toks[pos - 1].location)
        return pos

    def _modifiers(self, toks: list[Token], pos: int) -> tuple[set, int]:
        mods: set[str] = set()
        while toks[pos].kind is TokenKind.IDENT and toks[pos].text in _MODIFIERS:
            mods.add(toks[pos].text)
            pos += 1
        return mods, pos

    # -- members --------------------------------------------------------------------

    def _parse_members(
        self, toks: list[Token], pos: int, cls: Class, is_interface: bool
    ) -> int:
        while True:
            t = toks[pos]
            if t.kind is TokenKind.EOF:
                raise JavaParseError("unterminated class body", cls.location)
            if t.is_punct("}"):
                return pos + 1
            if t.is_punct(";"):
                pos += 1
                continue
            mods, pos = self._modifiers(toks, pos)
            t = toks[pos]
            # nested type
            if t.is_ident("class") or t.is_ident("interface"):
                pos = self._parse_type_decl(toks, pos - 0, _NsView(cls), t.location.file)  # type: ignore[arg-type]
                continue
            # static/instance initialiser block
            if t.is_punct("{"):
                pos = _skip_braces(toks, pos)
                continue
            # constructor: Name (
            if (
                t.kind is TokenKind.IDENT
                and t.text == cls.name
                and toks[pos + 1].is_punct("(")
            ):
                pos = self._parse_method(
                    toks, pos, cls, mods, self.types.class_type(cls),
                    is_ctor=True, is_interface=is_interface,
                )
                continue
            # field or method: Type name ...
            jtype, pos = self._parse_type(toks, pos)
            name_tok = toks[pos]
            if name_tok.kind is not TokenKind.IDENT:
                raise JavaParseError(
                    f"expected member name, found {name_tok.text!r}", name_tok.location
                )
            if toks[pos + 1].is_punct("("):
                pos = self._parse_method(
                    toks, pos, cls, mods, jtype,
                    is_ctor=False, is_interface=is_interface,
                )
            else:
                pos = self._parse_fields(toks, pos, cls, mods, jtype)
        return pos

    def _parse_type(self, toks: list[Token], pos: int) -> tuple[Type, int]:
        t = toks[pos]
        if t.kind is not TokenKind.IDENT:
            raise JavaParseError(f"expected type, found {t.text!r}", t.location)
        if t.text in _PRIMITIVES:
            base: Type = self.types.builtin(_PRIMITIVES[t.text])
            pos += 1
        else:
            name = t.text
            pos += 1
            while toks[pos].is_punct(".") and toks[pos + 1].kind is TokenKind.IDENT:
                name = toks[pos + 1].text
                pos += 2
            cls = self.classes_by_name.get(name)
            base = self.types.class_type(cls) if cls is not None else self.types.unknown(name)
        while toks[pos].is_punct("[") and toks[pos + 1].is_punct("]"):
            base = self.types.array_of(base, None)
            pos += 2
        return base, pos

    def _parse_fields(
        self, toks: list[Token], pos: int, cls: Class, mods: set, jtype: Type
    ) -> int:
        while True:
            name_tok = toks[pos]
            pos += 1
            t = jtype
            while toks[pos].is_punct("[") and toks[pos + 1].is_punct("]"):
                t = self.types.array_of(t, None)
                pos += 2
            f = Field(name_tok.text, name_tok.location, cls, t, is_static="static" in mods)
            f.access = _access_of(mods)
            cls.fields.append(f)
            # initialiser
            if toks[pos].is_punct("="):
                depth = 0
                while toks[pos].kind is not TokenKind.EOF:
                    tx = toks[pos]
                    if tx.text in ("(", "[", "{"):
                        depth += 1
                    elif tx.text in (")", "]", "}"):
                        depth -= 1
                    elif depth == 0 and (tx.is_punct(",") or tx.is_punct(";")):
                        break
                    pos += 1
            if toks[pos].is_punct(","):
                pos += 1
                continue
            if toks[pos].is_punct(";"):
                return pos + 1
            raise JavaParseError(
                f"malformed field declaration near {toks[pos].text!r}",
                toks[pos].location,
            )

    def _parse_method(
        self,
        toks: list[Token],
        pos: int,
        cls: Class,
        mods: set,
        rtype: Type,
        is_ctor: bool,
        is_interface: bool,
    ) -> int:
        name_tok = toks[pos]
        pos += 1
        assert toks[pos].is_punct("(")
        pos += 1
        params: list[Parameter] = []
        while not toks[pos].is_punct(")"):
            _pmods, pos = self._modifiers(toks, pos)
            ptype, pos = self._parse_type(toks, pos)
            pname = toks[pos]
            pos += 1
            while toks[pos].is_punct("[") and toks[pos + 1].is_punct("]"):
                ptype = self.types.array_of(ptype, None)
                pos += 2
            params.append(Parameter(pname.text, ptype, location=pname.location))
            if toks[pos].is_punct(","):
                pos += 1
        pos += 1  # ")"
        # throws clause
        if toks[pos].is_ident("throws"):
            while not toks[pos].is_punct("{") and not toks[pos].is_punct(";"):
                pos += 1
        kind = RoutineKind.CONSTRUCTOR if is_ctor else RoutineKind.MEMBER
        sig = self.types.function(rtype, [p.type for p in params])
        r = Routine(name_tok.text, name_tok.location, cls, sig, kind)
        r.parameters = params
        r.access = _access_of(mods)
        r.linkage = "java"
        r.is_static_member = "static" in mods
        if is_interface or "abstract" in mods:
            r.virtuality = Virtuality.PURE
        elif not is_ctor and "static" not in mods and "final" not in mods and r.access is not Access.PRIVATE:
            r.virtuality = Virtuality.VIRTUAL  # Java instance methods dispatch
        r.position.header = SourceRange(name_tok.location, toks[pos - 1].location)
        cls.routines.append(r)
        self.tree.register_routine(r)
        if toks[pos].is_punct(";"):
            return pos + 1  # abstract / interface method
        if not toks[pos].is_punct("{"):
            raise JavaParseError(
                f"expected method body, found {toks[pos].text!r}", toks[pos].location
            )
        start = pos
        end = _skip_braces(toks, pos)
        r.defined = True
        r.position.body = SourceRange(toks[start].location, toks[end - 1].location)
        self._pending.append(_PendingBody(r, cls, toks, start, end))
        return end

    # -- base resolution ----------------------------------------------------------------

    def _resolve_bases(self) -> None:
        for cls, base_name, _is_iface in self._pending_bases:
            base = self.classes_by_name.get(base_name)
            if base is None:
                self.sink.warn(f"unknown base type {base_name} for {cls.full_name}")
                continue
            cls.add_base(base, Access.PUBLIC, False)
        self._pending_bases.clear()

    # -- body pass: call extraction ---------------------------------------------------------

    def _parse_body(self, pb: _PendingBody) -> None:
        toks, r, cls = pb.tokens, pb.routine, pb.cls
        locals_: dict[str, Type] = {p.name: p.type for p in r.parameters}
        i = pb.start + 1
        while i < pb.end - 1:
            t = toks[i]
            # local declaration:  Type name [= ...] ;   (heuristic)
            if (
                t.kind is TokenKind.IDENT
                and (t.text in _PRIMITIVES or t.text in self.classes_by_name)
                and toks[i + 1].kind is TokenKind.IDENT
                and toks[i + 2].text in ("=", ";", ",", "[")
                and t.text not in _STMT_KEYWORDS
            ):
                jtype, j = self._parse_type(toks, i)
                if toks[j].kind is TokenKind.IDENT:
                    locals_[toks[j].text] = jtype
                    i = j + 1
                    continue
            # new Foo(...)
            if t.is_ident("new") and toks[i + 1].kind is TokenKind.IDENT:
                target = self.classes_by_name.get(toks[i + 1].text)
                if target is not None and toks[i + 2].is_punct("("):
                    nargs = _count_args(toks, i + 2)
                    ctor = self._pick(target.constructors(), nargs)
                    if ctor is not None:
                        r.add_call(ctor, False, t.location)
                i += 2
                continue
            # receiver.method(...) | method(...) | Type.static(...)
            if t.kind is TokenKind.IDENT and t.text not in _STMT_KEYWORDS:
                if toks[i + 1].is_punct("("):
                    # unqualified: this-class (or inherited) method
                    nargs = _count_args(toks, i + 1)
                    callee = self._pick(cls.find_routines(t.text), nargs)
                    if callee is not None:
                        r.add_call(callee, callee.virtuality is not Virtuality.NO, t.location)
                        i = self._follow_chain(toks, i + 1, callee, r)
                        continue
                elif toks[i + 1].is_punct(".") and toks[i + 2].kind is TokenKind.IDENT and toks[i + 3].is_punct("("):
                    recv_type: Optional[Type] = locals_.get(t.text)
                    recv_cls: Optional[Class] = None
                    if recv_type is not None:
                        recv_cls = recv_type.strip().class_decl()
                    elif t.text in self.classes_by_name:
                        recv_cls = self.classes_by_name[t.text]  # static call
                    elif t.text == "this":
                        recv_cls = cls
                    else:
                        fld = cls.find_member(t.text)
                        if isinstance(fld, Field):
                            recv_cls = fld.type.strip().class_decl()
                    callee = None
                    if recv_cls is not None:
                        nargs = _count_args(toks, i + 3)
                        callee = self._pick(recv_cls.find_routines(toks[i + 2].text), nargs)
                        if callee is not None:
                            r.add_call(
                                callee,
                                callee.virtuality is not Virtuality.NO,
                                toks[i + 2].location,
                            )
                    if callee is not None:
                        i = self._follow_chain(toks, i + 3, callee, r)
                    else:
                        i += 3  # past ident . ident — lands on "("
                    continue
            i += 1

    def _follow_chain(
        self, toks: list[Token], open_pos: int, callee: Routine, r: Routine
    ) -> int:
        """Resolve chained calls (``b.position().add(x)``): after a call's
        closing paren, a ``.method(`` dispatches on the return type.
        Returns the position to resume scanning from (just inside the
        original argument list, so nested arguments are scanned too)."""
        resume = open_pos + 1
        j = _matching_paren(toks, open_pos)
        current = callee
        while (
            j + 3 < len(toks)
            and toks[j + 1].is_punct(".")
            and toks[j + 2].kind is TokenKind.IDENT
            and toks[j + 3].is_punct("(")
        ):
            ret_cls = current.signature.return_type.strip().class_decl()
            if ret_cls is None:
                break
            nargs = _count_args(toks, j + 3)
            nxt = self._pick(ret_cls.find_routines(toks[j + 2].text), nargs)
            if nxt is None:
                break
            r.add_call(nxt, nxt.virtuality is not Virtuality.NO, toks[j + 2].location)
            current = nxt
            j = _matching_paren(toks, j + 3)
        return resume

    @staticmethod
    def _pick(candidates: list[Routine], nargs: int) -> Optional[Routine]:
        exact = [c for c in candidates if len(c.parameters) == nargs]
        if exact:
            return exact[0]
        return candidates[0] if candidates else None


class _NsView(Namespace):
    """Adapter: lets a nested type attach to its enclosing class while
    reusing the namespace-based declaration path."""

    def __init__(self, cls: Class):  # pragma: no cover - thin adapter
        super().__init__(cls.name, cls.location, None)
        self._cls = cls

    @property
    def classes(self):  # type: ignore[override]
        return self._cls.inner_classes

    @classes.setter
    def classes(self, value):  # noqa: D401 - dataclass-ish setter
        pass


def _skip_braces(toks: list[Token], pos: int) -> int:
    assert toks[pos].is_punct("{")
    depth = 0
    while pos < len(toks):
        t = toks[pos]
        if t.kind is TokenKind.EOF:
            raise JavaParseError("unbalanced braces", toks[pos].location)
        if t.is_punct("{"):
            depth += 1
        elif t.is_punct("}"):
            depth -= 1
            if depth == 0:
                return pos + 1
        pos += 1
    raise JavaParseError("unbalanced braces")


def _matching_paren(toks: list[Token], open_pos: int) -> int:
    """Index of the ``)`` matching the ``(`` at ``open_pos``."""
    depth = 0
    i = open_pos
    while i < len(toks):
        if toks[i].text in ("(", "[", "{"):
            depth += 1
        elif toks[i].text in (")", "]", "}"):
            depth -= 1
            if depth == 0:
                return i
        i += 1
    raise JavaParseError("unbalanced parentheses", toks[open_pos].location)


def _count_args(toks: list[Token], open_pos: int) -> int:
    """Number of comma-separated arguments in the parenthesised list."""
    assert toks[open_pos].is_punct("(")
    depth = 0
    count = 0
    seen_any = False
    i = open_pos
    while i < len(toks):
        t = toks[i]
        if t.text in ("(", "[", "{"):
            depth += 1
        elif t.text in (")", "]", "}"):
            depth -= 1
            if depth == 0:
                return count + 1 if seen_any else 0
        elif depth == 1:
            if t.is_punct(","):
                count += 1
            elif t.kind is not TokenKind.EOF:
                seen_any = True
        i += 1
    return count


def _access_of(mods: set) -> Access:
    if "public" in mods:
        return Access.PUBLIC
    if "protected" in mods:
        return Access.PROTECTED
    if "private" in mods:
        return Access.PRIVATE
    return Access.PUBLIC  # package-private rendered as public
