"""Java front end — the second half of the paper's Section 6 plan.

"We are also planning to develop a Java IL Analyzer based on EDG's Java
Front End, with the PDB and DUCTAPE enhanced to accommodate Java's
constructs."

A Java 1.x subset front end (the language as it stood at the paper's
writing: no generics) producing the common ILTree:

* ``package a.b;``  -> nested :class:`~repro.cpp.il.Namespace`
* ``class`` / ``interface`` -> :class:`~repro.cpp.il.Class`
  (interfaces are abstract classes with every method pure),
* methods -> :class:`~repro.cpp.il.Routine` (linkage ``java``; instance
  methods are virtual unless ``static``/``final``/``private``),
* ``extends`` / ``implements`` -> base-class edges,
* constructors, fields, static members, call extraction through a
  symbol-table-driven expression scan (``obj.method(...)``,
  ``new Foo(...)``, ``Type.staticMethod(...)``, chained calls).

Java has no preprocessor, so the C++ lexer serves unchanged — the
uniformity thesis again, one layer down.
"""

from repro.java.frontend import JavaFrontend
from repro.java.parser import JavaParseError

__all__ = ["JavaFrontend", "JavaParseError"]
