"""Raw PDB item records — the document model under DUCTAPE.

Attributes keep their values as parsed word lists / text; the typed view
is DUCTAPE's job.  ``RawItem`` preserves attribute order, which the
writer reproduces byte-for-byte, making write→parse→write a fixed point
(property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass(frozen=True)
class ItemRef:
    """A ``so#66``-style reference to another item."""

    prefix: str
    id: int

    def __post_init__(self):
        # refs are dict keys everywhere (indices, caller maps, SCC
        # tables); precomputing the hash beats the generated
        # hash((prefix, id)) tuple build on every lookup
        object.__setattr__(self, "_hash", hash((self.prefix, self.id)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __str__(self) -> str:
        return f"{self.prefix}#{self.id}"

    @staticmethod
    def parse(text: str) -> Optional["ItemRef"]:
        ref = _REF_CACHE.get(text)
        if ref is not None:
            return ref
        if text == "NULL":
            return None
        if "#" not in text:
            raise ValueError(f"not an item reference: {text!r}")
        prefix, _, num = text.partition("#")
        ref = ItemRef(prefix, int(num))
        _REF_CACHE[text] = ref
        return ref


#: memo for :meth:`ItemRef.parse` — ref spellings repeat constantly
#: (every ``rcall``/``sinc``/``cbase`` word), and ItemRef is immutable
_REF_CACHE: dict = {}


@dataclass(frozen=True)
class PdbLocation:
    """``so#66 23 15`` — file reference, line, column.

    A missing location renders as ``NULL 0 0`` (paper Figure 3 shows this
    for an absent header-end position)."""

    file: Optional[ItemRef]
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        f = "NULL" if self.file is None else str(self.file)
        return f"{f} {self.line} {self.column}"

    @property
    def known(self) -> bool:
        return self.file is not None

    @staticmethod
    def null() -> "PdbLocation":
        return PdbLocation(None, 0, 0)


class Attribute:
    """One attribute line: key + raw value words (or verbatim text).

    The word list may be held unsplit (``_rest``) by the fast reader and
    is materialised on first :attr:`words` access — most consumers touch
    only a few keys per item, so parse time stops paying for the rest.
    Rendering normalises to single-space joins either way, preserving
    the write∘parse fixed point."""

    __slots__ = ("key", "text", "_words", "_rest")

    def __init__(
        self, key: str, words: Optional[list[str]] = None, text: Optional[str] = None
    ):
        self.key = key
        self.text = text  # for "text"-grammar attributes
        self._words = [] if words is None else words
        self._rest = None

    @property
    def words(self) -> list[str]:
        w = self._words
        if w is None:
            w = self._words = self._rest.split()
        return w

    @words.setter
    def words(self, value: list[str]) -> None:
        self._words = value

    def __eq__(self, other: object):
        if other.__class__ is not Attribute:
            return NotImplemented
        return (
            self.key == other.key
            and self.text == other.text
            and self.words == other.words
        )

    def __repr__(self) -> str:
        return f"Attribute(key={self.key!r}, words={self.words!r}, text={self.text!r})"

    def clone(self) -> "Attribute":
        """Independent copy sharing the (interned) key and, when the
        words are still unsplit, the raw value text."""
        a = Attribute.__new__(Attribute)
        a.key = self.key
        a.text = self.text
        w = self._words
        a._words = list(w) if w is not None else None
        a._rest = self._rest
        return a

    def render(self) -> str:
        if self.text is not None:
            return f"{self.key} {self.text}".rstrip()
        words = self.words
        if words:
            return self.key + " " + " ".join(words)
        return self.key


class RawItem:
    """One PDB item: ``<prefix>#<id> <name>`` plus attribute lines.

    The fast reader hands an item its attribute lines *unparsed*
    (``_raw``); :attr:`attributes` materialises them into
    :class:`Attribute` objects on first access.  Most pipelines touch a
    fraction of a database's items, so parse time stops paying for the
    rest — the same laziness :attr:`Attribute.words` applies one level
    down.  Everything built through ``__init__``/``add`` is eager as
    before."""

    def __init__(
        self,
        prefix: str,
        id: int,
        name: str,
        attributes: Optional[list[Attribute]] = None,
    ):
        self.prefix = prefix
        self.id = id
        self.name = name
        self._attrs: Optional[list[Attribute]] = (
            [] if attributes is None else attributes
        )
        self._raw: Optional[list[str]] = None

    @property
    def attributes(self) -> list[Attribute]:
        attrs = self._attrs
        if attrs is None:
            # deferred import: the reader already imports this module
            from repro.pdbfmt.reader import materialize_attrs

            attrs = self._attrs = materialize_attrs(self.prefix, self._raw)
            self._raw = None
        return attrs

    @attributes.setter
    def attributes(self, value: list[Attribute]) -> None:
        self._attrs = value
        self._raw = None

    def __eq__(self, other: object):
        if other.__class__ is not RawItem:
            return NotImplemented
        return (
            self.prefix == other.prefix
            and self.id == other.id
            and self.name == other.name
            and self.attributes == other.attributes
        )

    def __repr__(self) -> str:
        return (
            f"RawItem(prefix={self.prefix!r}, id={self.id!r}, "
            f"name={self.name!r}, attributes={self.attributes!r})"
        )

    @property
    def ref(self) -> ItemRef:
        # cached: ids never mutate (merge clones instead of renumbering)
        r = self.__dict__.get("_ref")
        if r is None:
            r = self.__dict__["_ref"] = ItemRef(self.prefix, self.id)
        return r

    def add(self, key: str, *words: object) -> "RawItem":
        self.attributes.append(Attribute(key, [str(w) for w in words]))
        return self

    def add_text(self, key: str, text: str) -> "RawItem":
        self.attributes.append(Attribute(key, text=text))
        return self

    def _attr_index(self) -> dict:
        """Lazy key -> [attributes] index, rebuilt when the attribute
        list grows (``add``/reader appends; nothing ever removes or
        re-keys an attribute in place)."""
        cached = self.__dict__.get("_attr_idx")
        if cached is not None and cached[1] == len(self.attributes):
            return cached[0]
        idx: dict = {}
        for a in self.attributes:
            idx.setdefault(a.key, []).append(a)
        self.__dict__["_attr_idx"] = (idx, len(self.attributes))
        return idx

    def get(self, key: str) -> Optional[Attribute]:
        found = self._attr_index().get(key)
        return found[0] if found else None

    def get_all(self, key: str) -> list[Attribute]:
        return list(self._attr_index().get(key, ()))

    def first_word(self, key: str) -> Optional[str]:
        a = self.get(key)
        if a is None:
            return None
        if a.text is not None:
            return a.text.split()[0] if a.text.split() else None
        return a.words[0] if a.words else None

    def get_ref(self, key: str) -> Optional[ItemRef]:
        w = self.first_word(key)
        if w is None or w == "NULL":
            return None
        return ItemRef.parse(w)

    def get_location(self, key: str) -> Optional[PdbLocation]:
        a = self.get(key)
        if a is None or len(a.words) < 3:
            return None
        return PdbLocation(ItemRef.parse(a.words[0]), int(a.words[1]), int(a.words[2]))

    def get_positions(self, key: str) -> Optional[list[PdbLocation]]:
        """``*pos`` attributes hold four locations: header begin/end then
        body begin/end."""
        a = self.get(key)
        if a is None:
            return None
        locs: list[PdbLocation] = []
        w = a.words
        for i in range(0, len(w) - 2, 3):
            locs.append(PdbLocation(ItemRef.parse(w[i]), int(w[i + 1]), int(w[i + 2])))
        return locs


@dataclass
class PdbDocument:
    """A complete PDB: version header + items in file order."""

    version: str = "1.0"
    items: list[RawItem] = field(default_factory=list)

    def add(self, item: RawItem) -> RawItem:
        self.items.append(item)
        return item

    def by_prefix(self, prefix: str) -> list[RawItem]:
        return [i for i in self.items if i.prefix == prefix]

    def find(self, ref: ItemRef) -> Optional[RawItem]:
        for i in self.items:
            if i.prefix == ref.prefix and i.id == ref.id:
                return i
        return None

    def index(self) -> dict[ItemRef, RawItem]:
        return {i.ref: i for i in self.items}

    def __iter__(self) -> Iterator[RawItem]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)
