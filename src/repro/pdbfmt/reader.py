"""PDB reader: ASCII text -> document.

Tolerant by design (the format is meant to be hand-inspectable and
hand-editable): unknown attribute keys are preserved verbatim, blank
lines between items are optional, and attribute lines may appear in any
order.  Malformed structure (no header, attribute before any item)
raises :class:`PdbParseError`."""

from __future__ import annotations

import re

from repro.pdbfmt.items import Attribute, PdbDocument, RawItem
from repro.pdbfmt.spec import ATTRIBUTE_SCHEMAS

_HEADER_RE = re.compile(r"^<PDB\s+([0-9.]+)>\s*$")
_ITEM_RE = re.compile(r"^(ferr|so|ro|cl|ty|te|na|ma)#(\d+)(?:\s+(.*))?$")


class PdbParseError(Exception):
    """Raised on structurally invalid PDB text."""

    def __init__(self, message: str, line_no: int):
        self.line_no = line_no
        super().__init__(f"line {line_no}: {message}")


def parse_pdb(text: str) -> PdbDocument:
    """Parse PDB text into a document."""
    doc: PdbDocument | None = None
    current: RawItem | None = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        m = _HEADER_RE.match(line)
        if m:
            if doc is not None:
                raise PdbParseError("duplicate <PDB> header", line_no)
            doc = PdbDocument(version=m.group(1))
            continue
        if doc is None:
            raise PdbParseError("content before <PDB> header", line_no)
        m = _ITEM_RE.match(line)
        if m:
            prefix, num, name = m.group(1), int(m.group(2)), m.group(3) or ""
            current = RawItem(prefix=prefix, id=num, name=name)
            doc.items.append(current)
            continue
        if current is None:
            raise PdbParseError(f"attribute line outside an item: {line!r}", line_no)
        key, _, rest = line.partition(" ")
        grammar = ATTRIBUTE_SCHEMAS.get(current.prefix, {}).get(key)
        if grammar == "text":
            current.attributes.append(Attribute(key, text=rest))
        else:
            current.attributes.append(Attribute(key, words=rest.split()))
    if doc is None:
        raise PdbParseError("empty input: missing <PDB> header", 0)
    return doc


def parse_pdb_file(path: str) -> PdbDocument:
    """Parse a PDB file from disk."""
    with open(path) as f:
        return parse_pdb(f.read())
