"""PDB reader: ASCII text -> document.

Tolerant by design (the format is meant to be hand-inspectable and
hand-editable): unknown attribute keys are preserved verbatim, blank
lines between items are optional, and attribute lines may appear in any
order.  Malformed structure (no header, attribute before any item)
raises :class:`PdbParseError`.

Two parsing paths share one grammar:

* the default fast path scans each line with ``str.partition``/slice
  operations and no per-line regexes, interning attribute keys and item
  prefixes so every ``rloc`` in a million-line database is the same
  string object (``strict=False``).  Attribute lines are stored
  unparsed on their item and materialised on first
  ``RawItem.attributes`` access, so parse time is O(lines) while the
  attribute-object cost is paid only for items a consumer touches.  On
  structurally invalid input it re-parses through the reference path so
  the raised :class:`PdbParseError` (message and line number) is
  identical;
* the original regex pair is retained behind ``strict=True`` as the
  reference implementation — CI runs a differential fuzz of the two
  over the E12 corpus.

The fast path requires item ids to be ASCII digits (the writer only
ever emits ASCII); the regex path additionally accepts Unicode digits
via ``\\d``, which no real database contains.
"""

from __future__ import annotations

import re
import sys

from repro.pdbfmt.items import Attribute, PdbDocument, RawItem
from repro.pdbfmt.spec import ATTRIBUTE_SCHEMAS

_HEADER_RE = re.compile(r"^<PDB\s+([0-9.]+)>\s*$")
_ITEM_RE = re.compile(r"^(ferr|so|ro|cl|ty|te|na|ma)#(\d+)(?:\s+(.*))?$")

#: interned item prefixes — membership test and canonical object in one map
_PREFIXES = {p: sys.intern(p) for p in ("ferr", "so", "ro", "cl", "ty", "te", "na", "ma")}

#: interned attribute keys, shared with the writer and ``pdbmerge`` so a
#: parse -> write round trip does not re-allocate identical key strings
_KEY_INTERN: dict = {}

#: per-prefix ``raw key -> (interned key, is_text_grammar)``, filled
#: lazily so one dict probe per attribute line answers both questions
_KEY_INFO: dict = {p: {} for p in _PREFIXES}
_KEY_INFO[""] = {}

_WS = " \t\r\f\v\n"
_DIGITS = "0123456789"


def intern_key(key: str) -> str:
    """Return the canonical shared object for an attribute key."""
    cached = _KEY_INTERN.get(key)
    if cached is None:
        cached = _KEY_INTERN[key] = sys.intern(key)
    return cached


def _key_info(prefix: str, key: str, line: str) -> tuple:
    """Slow path for a not-yet-seen attribute key.

    Also the fast loop's duplicate-header detector: the loop itself
    never re-tests for ``<PDB`` once the header is consumed, so a
    mid-document header line lands here (its would-be key starts with
    ``<``) and bounces to the reference path via TypeError.  Keys
    starting with ``<`` are never cached for that reason."""
    if key[:1] == "<" and _HEADER_RE.match(line) is not None:
        raise TypeError  # duplicate <PDB> header
    ikey = intern_key(key)
    info = (ikey, ATTRIBUTE_SCHEMAS.get(prefix, {}).get(key) == "text")
    if ikey[:1] != "<":
        _KEY_INFO[prefix][ikey] = info
    return info


class PdbParseError(Exception):
    """Raised on structurally invalid PDB text."""

    def __init__(self, message: str, line_no: int):
        self.line_no = line_no
        super().__init__(f"line {line_no}: {message}")


def parse_pdb(text: str, strict: bool = False) -> PdbDocument:
    """Parse PDB text into a document.

    ``strict=True`` selects the regex reference path (tolerant
    error-reporting mode); the default fast path produces an identical
    document for any text the writer can emit."""
    if strict:
        return _parse_pdb_regex(text)
    # the header must be the first non-blank line; consuming it up front
    # frees the per-line loop from re-testing for it (duplicate headers
    # are caught by _key_info, whose would-be key starts with '<')
    lines = text.splitlines()
    start = 0
    n_lines = len(lines)
    while start < n_lines and not lines[start].rstrip():
        start += 1
    if start == n_lines:
        return _parse_pdb_regex(text)  # empty input
    m = _HEADER_RE.match(lines[start].rstrip())
    if m is None:
        return _parse_pdb_regex(text)  # content before <PDB> header
    doc = PdbDocument(version=m.group(1))
    doc_append = doc.items.append
    # attribute lines before the first item are rare structural errors,
    # so the loop does not test for them: the bound append starts as
    # None and calling it raises TypeError, which delegates to the
    # reference path for the exact PdbParseError (message, line number)
    current_raw = None  # bound append of the current item's raw attr lines
    prefixes = _PREFIXES
    new = RawItem.__new__
    item_cls = RawItem
    try:
        for line in map(str.rstrip, lines[start + 1 :]):
            if not line:
                continue
            # item lines look like "so#12 name" — the '#' sits after a
            # 2-char prefix (4 for ferr), which cheaply rules out nearly
            # every attribute line before paying for a partition + lookup
            if "#" in line[2:5]:
                head, sep, rest = line.partition("#")
                iprefix = prefixes.get(head)
                if iprefix is not None:
                    n = len(rest)
                    k = 0
                    while k < n and rest[k] in _DIGITS:
                        k += 1
                    if k and (k == n or rest[k] in _WS):
                        # the line was rstripped, so anything after the
                        # ws run is the (non-empty) name; k == n: no name
                        item = new(item_cls)
                        item.prefix = iprefix
                        item.id = int(rest[:k])
                        item.name = rest[k:].lstrip(_WS)
                        item._attrs = None
                        raw = item._raw = []
                        doc_append(item)
                        current_raw = raw.append
                        continue
            # attribute lines are *stored unparsed* — RawItem.attributes
            # materialises them on first access (via materialize_attrs),
            # so parse time is O(lines), not O(attribute objects).  A
            # line starting '<' may be a duplicate <PDB> header, which
            # strict mode rejects — bounce to the reference path now,
            # while laziness could otherwise swallow the error
            if line[0] == "<":
                raise TypeError
            current_raw(line)
    except TypeError:
        # structural error: the reference path raises the canonical
        # PdbParseError (or, if it can parse after all, its result is
        # correct by construction)
        return _parse_pdb_regex(text)
    return doc


def materialize_attrs(prefix: str, lines: list) -> list:
    """Parse an item's raw attribute lines (the fast path's deferred
    half, called from ``RawItem.attributes`` on first access)."""
    ki_get = _KEY_INFO[prefix].get
    out: list = []
    append = out.append
    new = Attribute.__new__
    attr_cls = Attribute
    for line in lines:
        key, _, rest = line.partition(" ")
        info = ki_get(key)
        if info is None:
            info = _key_info(prefix, key, line)
        a = new(attr_cls)
        a.key = info[0]
        if info[1]:
            a.text = rest
            a._words = []
            a._rest = None
        else:
            a.text = None
            a._words = None  # split lazily on first .words access
            a._rest = rest
        append(a)
    return out


def _parse_pdb_regex(text: str) -> PdbDocument:
    """Reference implementation: one header + one item regex per line."""
    doc: PdbDocument | None = None
    current: RawItem | None = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        m = _HEADER_RE.match(line)
        if m:
            if doc is not None:
                raise PdbParseError("duplicate <PDB> header", line_no)
            doc = PdbDocument(version=m.group(1))
            continue
        if doc is None:
            raise PdbParseError("content before <PDB> header", line_no)
        m = _ITEM_RE.match(line)
        if m:
            prefix, num, name = m.group(1), int(m.group(2)), m.group(3) or ""
            current = RawItem(prefix=prefix, id=num, name=name)
            doc.items.append(current)
            continue
        if current is None:
            raise PdbParseError(f"attribute line outside an item: {line!r}", line_no)
        key, _, rest = line.partition(" ")
        grammar = ATTRIBUTE_SCHEMAS.get(current.prefix, {}).get(key)
        if grammar == "text":
            current.attributes.append(Attribute(key, text=rest))
        else:
            current.attributes.append(Attribute(key, words=rest.split()))
    if doc is None:
        raise PdbParseError("empty input: missing <PDB> header", 0)
    return doc


def parse_pdb_file(path: str, strict: bool = False) -> PdbDocument:
    """Parse a PDB file from disk."""
    with open(path) as f:
        return parse_pdb(f.read(), strict=strict)
