"""PDB writer: document -> compact ASCII text (paper Figure 3's format)."""

from __future__ import annotations

from repro import obs
from repro.pdbfmt.items import PdbDocument
from repro.pdbfmt.reader import intern_key


def write_pdb(doc: PdbDocument) -> str:
    """Render a document in the compact PDB format.

    Item records are separated by blank lines; attribute order within an
    item is preserved, so the writer is a deterministic function of the
    document and reparse→rewrite is the identity.

    As a side effect every attribute key is canonicalised into the
    reader's interned key table — documents built in memory (analyzer
    output, merge results) end up sharing one string object per distinct
    key with everything the reader parses."""
    with obs.observe("pdb.write", cat="pdbfmt", items=len(doc.items)):
        lines: list[str] = [f"<PDB {doc.version}>", ""]
        for item in doc.items:
            name = item.name if item.name else "<anon>"
            lines.append(f"{item.prefix}#{item.id} {name}")
            for attr in item.attributes:
                attr.key = intern_key(attr.key)
                lines.append(attr.render())
            lines.append("")
        return "\n".join(lines)


def write_pdb_file(doc: PdbDocument, path: str) -> None:
    """Write a document to a PDB file on disk."""
    with open(path, "w") as f:
        f.write(write_pdb(doc))
