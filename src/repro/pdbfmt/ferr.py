"""Frontend error records (``ferr``) — fault-tolerant build support.

When the front end recovers from user-source errors (panic-mode resync,
``--keep-going-errors``), the translation unit still contributes partial
IL to its PDB.  Each recorded diagnostic becomes a ``ferr`` item so that
downstream tools can display "this file failed with these errors"
alongside whatever entities survived (docs/FORMAT.md, "Frontend error
records").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.pdbfmt.items import PdbDocument, RawItem

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cpp.diagnostics import Diagnostic

#: substrings classifying a diagnostic message into ``fkind`` buckets
_INCLUDE_MARKERS = ("#include", "include depth", "circular include")
_LEX_MARKERS = ("unterminated", "unexpected character", "invalid character")


def classify_diagnostic(message: str) -> str:
    """Map a diagnostic message to an ``fkind`` word.

    The buckets — ``limit`` (cascade bound), ``include``, ``lex``,
    ``parse`` — are heuristic: diagnostics carry no structured kind, so
    this keys off the stable message vocabulary of the front end.
    """
    m = message.lower()
    if m.startswith("too many errors"):
        return "limit"
    if any(k in m for k in _INCLUDE_MARKERS):
        return "include"
    if any(k in m for k in _LEX_MARKERS):
        return "lex"
    return "parse"


def append_error_items(
    doc: PdbDocument, diagnostics: Iterable["Diagnostic"], tu_name: str
) -> list[RawItem]:
    """Append one ``ferr`` item per diagnostic to ``doc``.

    ``tu_name`` (the translation unit's main file) becomes the item name,
    so merged PDBs keep per-TU attribution.  Diagnostic locations are
    resolved against the document's ``so`` items by file name; a location
    in a file the PDB does not know (or no location at all) renders as a
    ``NULL`` reference, mirroring the format's convention for unknown
    positions.  Returns the created items.
    """
    by_name = {raw.name: raw.ref for raw in doc.items if raw.prefix == "so"}
    next_id = max((raw.id for raw in doc.items if raw.prefix == "ferr"), default=0) + 1
    created: list[RawItem] = []
    for d in diagnostics:
        item = RawItem(prefix="ferr", id=next_id, name=tu_name)
        next_id += 1
        loc = d.location
        fref = by_name.get(loc.file.name) if loc is not None else None
        item.add("ffile", fref if fref is not None else "NULL")
        if loc is not None:
            item.add("floc", fref if fref is not None else "NULL", loc.line, loc.column)
        else:
            item.add("floc", "NULL", 0, 0)
        item.add("fsev", d.severity.name.lower())
        item.add("fkind", classify_diagnostic(d.message))
        item.add_text("fmsg", d.message)
        doc.add(item)
        created.append(item)
    return created
