"""PDB item types, prefixes, and attribute schemas — paper Table 1 as data.

=============  =======  =====================================================
Item type      Prefix   Attributes
=============  =======  =====================================================
SOURCE FILES   so       sinc (files included by source file), ssys
ROUTINES       ro       rloc, rclass/rnspace (parent), racs, rsig, rlink,
                        rstore, rvirt, rkind, rtempl (template from which
                        instantiated), rcall (functions called), rinline,
                        rstatic, rspecl, rpos
CLASSES        cl       cloc, ckind, ctempl, cnspace/cclass, cacs, cbase
                        (direct base classes), cfriend/cfrfunc (friends),
                        cfunc (member functions), cmem + cmloc/cmacs/cmkind/
                        cmtype (other members), cspecl, cpos
TYPES          ty       ykind, yikind, yref, ytref, yptr, yelem, ysize,
                        yrett, yargt, yellip, yqual, yexcep, yename/yeval
TEMPLATES      te       tloc, tnspace/tclass (parent), tacs, tkind,
                        ttext (text of template), tpos
NAMESPACES     na       nloc, nnspace, nmem (members), nalias, npos
MACROS         ma       maloc, makind, matext
FRONT ERRORS   ferr     ffile (file ref), floc, fsev, fkind, fmsg
=============  =======  =====================================================

``ferr`` records are this reproduction's extension for fault-tolerant
builds: a translation unit whose front end recovered from user-source
errors still contributes its IL, and each recorded diagnostic becomes a
``ferr`` item so tools can display "this file failed with these errors"
instead of choking (docs/FORMAT.md, "Frontend error records").

The header record ``<PDB 1.0>`` opens every file.  All items carry a
source position; "fat" items (routines, classes, templates, namespaces)
additionally carry header/body extents (the ``*pos`` attributes).

The attribute value grammars used by the reader/writer:

``ref``    — an item reference, ``so#6`` / ``NULL``
``loc``    — ``so#6 12 9`` (file ref, line, column); NULL file = unknown
``pos``    — two locations: header begin/end, then two more: body
``text``   — the rest of the line, verbatim
``words``  — whitespace-separated tokens
"""

from __future__ import annotations

PDB_VERSION = "1.0"

#: prefix -> human name (Table 1, "Item Type" column)
ITEM_TYPES: dict[str, str] = {
    "so": "SOURCE FILES",
    "ro": "ROUTINES",
    "cl": "CLASSES",
    "ty": "TYPES",
    "te": "TEMPLATES",
    "na": "NAMESPACES",
    "ma": "MACROS",
    "ferr": "FRONTEND ERRORS",
}

#: attribute key -> value grammar, per item prefix.
#: grammar in {"ref", "loc", "pos", "text", "words"}
ATTRIBUTE_SCHEMAS: dict[str, dict[str, str]] = {
    "so": {
        "sinc": "ref",    # a file this file directly includes
        "ssys": "words",  # "yes" for system (angle-include) files
    },
    "ro": {
        "rloc": "loc",     # location of the routine name
        "rclass": "ref",   # parent class (cl#)
        "rnspace": "ref",  # parent namespace (na#)
        "racs": "words",   # pub | prot | priv | NA
        "rsig": "ref",     # signature (ty# of function type)
        "rlink": "words",  # C++ | C | fortran ...
        "rstore": "words", # NA | static | extern
        "rvirt": "words",  # no | virt | pure
        "rkind": "words",  # func | memfunc | ctor | dtor | op | conv
        "rtempl": "ref",   # template from which instantiated (te#)
        "rarg": "words",   # parameter: type ref, name, D|- (has default)
        "ralias": "words",  # generic-interface alias names (Fortran 90)
        "rexit": "loc",    # routine exit point (Fortran instrumentation)
        "rfexec": "loc",   # first executable statement (Fortran entry)
        "rcall": "words",  # callee ref, virtual flag, call location
        "rinline": "words",
        "rstatic": "words",  # static member function: yes
        "rspecl": "words",   # explicit specialization: yes
        "rpos": "pos",
    },
    "cl": {
        "cloc": "loc",
        "ckind": "words",  # class | struct | union
        "ctempl": "ref",   # template from which instantiated
        "cnspace": "ref",
        "cclass": "ref",   # enclosing class for nested classes
        "cacs": "words",
        "cbase": "words",  # access, virtual flag, base class ref, loc
        "cfriend": "ref",  # friend class
        "cfrfunc": "ref",  # friend function
        "cfunc": "words",  # member function ref + its location
        "cmem": "text",    # data member name (followed by cm* details)
        "cmloc": "loc",
        "cmacs": "words",
        "cmkind": "words",  # var | svar | mut
        "cmtype": "ref",
        "cspecl": "words",  # explicit specialization: yes
        "cpos": "pos",
    },
    "ty": {
        "yloc": "loc",      # for named types (enums, typedefs)
        "ynspace": "ref",   # parent namespace
        "yclass": "ref",    # parent class
        "yacs": "words",    # access mode for member types
        "ykind": "words",   # bool/char/int/float/double/void/ptr/ref/tref/
                            # array/func/enum/typedef/wchar/unknown
        "yikind": "words",  # integer kind for builtins
        "yptr": "ref",      # pointee
        "yref": "ref",      # referenced type
        "ytref": "ref",     # qualified/aliased target
        "yelem": "ref",     # array element
        "ysize": "words",   # array extent
        "yrett": "ref",     # function return type
        "yargt": "words",   # function parameter type ref (+ F final marker)
        "yellip": "words",  # has ellipsis: yes
        "yqual": "words",   # const | volatile (function cv-quals too)
        "yexcep": "ref",    # exception class in a throw() spec
        "yename": "words",  # enumerator name + value
    },
    "te": {
        "tloc": "loc",
        "tnspace": "ref",
        "tclass": "ref",
        "tacs": "words",
        "tkind": "words",  # class | func | memfunc | statmem | memclass
        "ttext": "text",
        "tpos": "pos",
    },
    "na": {
        "nloc": "loc",
        "nnspace": "ref",  # parent namespace
        "nmem": "ref",     # one member item
        "nalias": "ref",   # alias target namespace
        "npos": "pos",
    },
    "ma": {
        "maloc": "loc",
        "makind": "words",  # def | undef
        "matext": "text",
    },
    "ferr": {
        "ffile": "ref",   # the file the diagnostic points into (so#)
        "floc": "loc",    # error position
        "fsev": "words",  # error | warning
        "fkind": "words", # parse | lex | include | limit (cascade bound)
        "fmsg": "text",   # the diagnostic message, verbatim
    },
}

#: attributes whose value embeds item references at fixed word positions
#: (used by pdbmerge id remapping): key -> indices of ref words.
EMBEDDED_REF_WORDS: dict[str, list[int]] = {
    "rcall": [0, 2],   # callee ref ... file ref of the location
    "cfunc": [0, 1],   # routine ref, file ref
    "cbase": [2, 3],   # access, virt, class ref, file ref
    "yargt": [0],
}


def is_known_attribute(prefix: str, key: str) -> bool:
    """Whether ``key`` belongs to the schema of item type ``prefix``."""
    return key in ATTRIBUTE_SCHEMAS.get(prefix, {})


def attribute_grammar(prefix: str, key: str) -> str:
    """The value grammar (ref/loc/pos/text/words) of one attribute."""
    return ATTRIBUTE_SCHEMAS[prefix][key]
