"""The PDB (program database) ASCII format — paper Figure 3 / Table 1.

A PDB document is a header line (``<PDB 1.0>``) followed by item records.
Each record opens with ``<prefix>#<id> <name>`` and continues with
attribute lines whose keys are drawn from the item type's schema
(:mod:`repro.pdbfmt.spec`).  The format is "relatively compact and
portable ASCII" (paper Section 3.2): everything is plain text, ids are
small integers unique per prefix, and cross-references are ``so#6``-style
tags.

Modules:

* :mod:`repro.pdbfmt.spec`   — Table 1 as data (item types, prefixes,
  attribute schemas),
* :mod:`repro.pdbfmt.items`  — raw item records and reference values,
* :mod:`repro.pdbfmt.writer` — document -> text,
* :mod:`repro.pdbfmt.reader` — text -> document (tolerant, round-trips).
"""

from repro.pdbfmt.items import ItemRef, PdbDocument, PdbLocation, RawItem
from repro.pdbfmt.reader import PdbParseError, parse_pdb
from repro.pdbfmt.spec import ATTRIBUTE_SCHEMAS, ITEM_TYPES, PDB_VERSION
from repro.pdbfmt.writer import write_pdb

__all__ = [
    "ATTRIBUTE_SCHEMAS",
    "ITEM_TYPES",
    "ItemRef",
    "PDB_VERSION",
    "PdbDocument",
    "PdbLocation",
    "PdbParseError",
    "RawItem",
    "parse_pdb",
    "write_pdb",
]
